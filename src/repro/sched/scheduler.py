"""The shared task scheduler behind sweeps, autotune, replicas and grids.

One :class:`Scheduler` instance turns batches of
:class:`~repro.core.config.RunConfig` into deduplicated tasks executed by
a persistent :class:`concurrent.futures.ProcessPoolExecutor` worker pool.
See :mod:`repro.sched` for the contract (dedup, cache short-circuit,
bounded crash retry with poisoning, resumable journal, telemetry).

Execution model
---------------
``map(configs)`` is synchronous: it returns results in request order,
bit-identical to a serial ``[run(c) for c in configs]``.  Internally each
distinct config key owns one :class:`~repro.sched.task.TaskRecord`;
requesters of an already-known key — within the batch, across batches, or
from concurrent threads — coalesce onto the existing record and wait on
its ``done`` event instead of resubmitting.  Configs that cannot travel
through the pool (functional or traced runs, or any run while a
process-global trace capture is installed) execute inline in the parent,
exactly as the serial path would.

Crash recovery
--------------
A dying worker breaks the whole ``ProcessPoolExecutor`` (every pending
future raises :class:`BrokenExecutor`), so blame is ambiguous: any of the
in-flight configs could be the culprit.  The scheduler rebuilds the pool,
bumps the attempt count of every suspect, and resubmits the ones still
under ``max_retries`` in parallel.  A suspect that *exceeds* the bound is
never poisoned on ambiguous evidence — it is placed in a **quarantine**
and re-run *solo* (one task in the pool, everything else parked).  A solo
crash is exact blame: the config is poisoned and raises
:class:`PoisonedConfigError` to its requesters; a solo success exonerates
an innocent that was merely co-scheduled with a crasher.  Once the
quarantine drains, parked work resumes in parallel.  The deterministic
crasher is weeded out after at most ``max_retries`` ambiguous crashes
plus one solo crash; the rest of the batch always completes.
"""

from __future__ import annotations

import logging
import statistics
import threading
import time
from concurrent.futures import BrokenExecutor, Future, ProcessPoolExecutor
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Union

from repro.core.config import RunConfig, RunResult
from repro.sched.journal import Journal
from repro.sched.task import TaskRecord, TaskState
from repro.sched.worker import execute_task, init_worker

__all__ = [
    "Scheduler",
    "SchedulerError",
    "PoisonedConfigError",
    "configure",
    "active_scheduler",
    "scheduled",
]

log = logging.getLogger("repro.sched")

#: Counter names reported by :meth:`Scheduler.stats` (always all present).
COUNTER_NAMES = (
    "submitted",
    "coalesced",
    "cache_hits",
    "journal_hits",
    "simulated",
    "inline",
    "failed",
    "poisoned",
    "retries",
    "crashes",
)


class SchedulerError(RuntimeError):
    """Base class for scheduler-raised errors."""


class PoisonedConfigError(SchedulerError):
    """A config crashed its worker more than ``max_retries`` times."""

    def __init__(self, cfg: RunConfig, attempts: int):
        self.cfg = cfg
        self.attempts = attempts
        super().__init__(
            f"config {cfg.implementation}@{cfg.machine.name} cores={cfg.cores} "
            f"threads={cfg.threads_per_task} T={cfg.box_thickness} crashed its "
            f"worker {attempts} times and is poisoned (bound: retries exhausted)"
        )


class Scheduler:
    """Deduplicating parallel executor for batches of run configs.

    Parameters
    ----------
    jobs:
        Worker processes. ``1`` executes inline (serial order, no pool)
        while keeping dedup, cache short-circuit, journal and telemetry.
    cache_dir:
        Run-cache directory handed to every worker. Defaults to the
        directory of the process-wide cache (:func:`repro.cache.active_cache`)
        when one is installed.
    journal:
        Path of the resumable JSONL journal, or an already-open
        :class:`~repro.sched.journal.Journal`; ``None`` disables
        journaling.
    max_retries:
        Worker crashes a single config may survive before being poisoned.
    straggler_factor:
        A completed task is logged as a straggler when its wall time
        exceeds ``straggler_factor`` x the batch median.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache_dir: Optional[str] = None,
        journal: Optional[Union[str, Journal]] = None,
        max_retries: int = 2,
        straggler_factor: float = 3.0,
    ):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        self.jobs = int(jobs)
        self.max_retries = int(max_retries)
        self.straggler_factor = float(straggler_factor)
        if cache_dir is None:
            from repro.cache import active_cache

            active = active_cache()
            cache_dir = active.directory if active is not None else None
        self.cache_dir = cache_dir
        if isinstance(journal, Journal):
            self.journal = journal
        else:
            self.journal = Journal(journal) if journal is not None else None
        #: parent-side cache handle for probing/storing when no ambient
        #: cache is installed (lazy; see _probe_cache)
        self._cache: Optional[Any] = None
        #: test/CI hook: ``(cfg, attempt) -> bool`` — True crashes the worker
        #: assigned to this config on this attempt (see repro.sched.worker).
        self.fault_injector: Optional[Callable[[RunConfig, int], bool]] = None

        self._lock = threading.RLock()
        #: signalled by a future's done-callback; drain loops sleep on it
        self._cond = threading.Condition(self._lock)
        self._exec: Optional[ProcessPoolExecutor] = None
        #: key -> terminal record (session-wide dedup, including failures)
        self._memo: Dict[str, TaskRecord] = {}
        #: key -> in-flight record (coalescing target)
        self._inflight: Dict[str, TaskRecord] = {}
        #: records awaiting a *solo* confirmation run (exact crash blame)
        self._quarantine: List[TaskRecord] = []
        #: the record currently running solo, if any
        self._qactive: Optional[TaskRecord] = None
        #: records parked while the quarantine drains
        self._parked: List[TaskRecord] = []
        self._counters: Dict[str, int] = {k: 0 for k in COUNTER_NAMES}
        #: wall seconds of every *simulated* task, in completion order
        self.wall_times: List[float] = []
        #: telemetry dicts of detected stragglers (see TaskRecord.describe)
        self.straggler_log: List[Dict[str, Any]] = []
        #: telemetry dicts of poisoned configs
        self.poisoned: List[Dict[str, Any]] = []
        self._closed = False

    # -- pool lifecycle -------------------------------------------------------
    def _executor(self) -> ProcessPoolExecutor:
        if self._exec is None:
            self._exec = ProcessPoolExecutor(
                max_workers=self.jobs,
                initializer=init_worker,
                initargs=(self.cache_dir,),
            )
        return self._exec

    def _rebuild_pool(self) -> None:
        if self._exec is not None:
            self._exec.shutdown(wait=False, cancel_futures=True)
            self._exec = None

    def close(self) -> None:
        """Shut the worker pool down and close the journal."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            if self._exec is not None:
                self._exec.shutdown(wait=True, cancel_futures=True)
                self._exec = None
            if self.journal is not None:
                self.journal.close()

    def __enter__(self) -> "Scheduler":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- submission -----------------------------------------------------------
    @staticmethod
    def _forced(cfg: RunConfig) -> RunConfig:
        """Apply the process-global noise override before keying.

        Mirrors :func:`repro.core.runner.run`, so a scheduled run keys and
        simulates exactly the config the serial path would.
        """
        from repro.perturb import forced_override

        forced = forced_override()
        if forced is not None and cfg.seed is None and cfg.noise is None:
            return cfg.with_(seed=forced[0], noise=forced[1])
        return cfg

    @staticmethod
    def _poolable(cfg: RunConfig) -> bool:
        """Whether this config's run may execute in a worker process.

        Functional and traced runs carry non-scalar artifacts, and a
        process-global trace capture hook must observe every run in the
        installing process — all of those execute inline instead.
        """
        from repro.cache import cacheable
        from repro.obs.capture import active_capture

        return cacheable(cfg) and active_capture() is None

    def _submit_record(self, rec: TaskRecord) -> None:
        """Dispatch one record to the pool (caller holds the lock)."""
        payload: Dict[str, Any] = {"cfg": rec.cfg, "key": rec.key}
        if self.fault_injector is not None and self.fault_injector(
            rec.cfg, rec.attempts
        ):
            payload["crash"] = True
        rec.state = TaskState.RUNNING
        rec.t_submit = time.perf_counter()
        rec.future = self._executor().submit(execute_task, payload)
        rec.future.add_done_callback(self._wake)

    def _wake(self, _fut: Future) -> None:
        """Future done-callback: nudge every drain loop to re-scan."""
        with self._cond:
            self._cond.notify_all()

    def map(
        self,
        configs: Iterable[RunConfig],
        return_exceptions: bool = False,
    ) -> List[Union[RunResult, BaseException]]:
        """Execute a batch; results come back in request order.

        With ``return_exceptions=False`` (default) the first failed or
        poisoned task raises (after the whole batch settled, so sibling
        results are journaled/cached).  With ``return_exceptions=True``
        failures are returned in-slot as the exception object.
        """
        if self._closed:
            raise SchedulerError("scheduler is closed")
        cfgs = [self._forced(c) for c in configs]
        slots: List[Optional[TaskRecord]] = [None] * len(cfgs)
        inline: List[int] = []  # indices executed in the parent
        owned: List[TaskRecord] = []  # records this call submitted
        waiting: List[TaskRecord] = []  # records owned by someone else

        from repro.cache import config_key

        cache = self._probe_cache()
        with self._lock:
            for i, cfg in enumerate(cfgs):
                self._counters["submitted"] += 1
                if not self._poolable(cfg):
                    inline.append(i)
                    continue
                key = config_key(cfg)
                rec = self._memo.get(key)
                if rec is not None:  # session dedup (results and failures)
                    self._counters["coalesced"] += 1
                    slots[i] = rec
                    continue
                rec = self._inflight.get(key)
                if rec is not None:  # in-flight coalescing
                    self._counters["coalesced"] += 1
                    slots[i] = rec
                    if rec not in waiting and rec not in owned:
                        waiting.append(rec)
                    continue
                rec = TaskRecord(key, cfg)
                slots[i] = rec
                # Warm journal entry: replay, no worker occupied.
                if self.journal is not None and key in self.journal:
                    rec.payload = self.journal.get(key)
                    rec.state = TaskState.JOURNALED
                    rec.done.set()
                    self._memo[key] = rec
                    self._counters["journal_hits"] += 1
                    continue
                # Warm cache entry: replay, no worker occupied.  Misses are
                # not charged here — the worker that simulates the config
                # performs (and counts) the authoritative lookup.
                if cache is not None:
                    cached = cache.get(cfg, record_miss=False)
                    if cached is not None:
                        rec.payload = {
                            "elapsed_s": cached.elapsed_s,
                            "phases": dict(cached.phases),
                            "comm_stats": dict(cached.comm_stats),
                        }
                        rec.state = TaskState.CACHED
                        rec.done.set()
                        self._memo[key] = rec
                        self._counters["cache_hits"] += 1
                        if self.journal is not None:
                            self.journal.record(key, rec.payload)
                        continue
                self._inflight[key] = rec
                if self.jobs == 1:
                    owned.append(rec)  # executed inline below, memoized
                else:
                    if self._quarantining():
                        self._parked.append(rec)  # resumes after quarantine
                    else:
                        self._submit_record(rec)
                    owned.append(rec)

        # Inline execution (functional/traced/captured runs): serial order,
        # exactly the code path the unscheduled pipeline takes.
        from repro.core.runner import run

        inline_results: Dict[int, Union[RunResult, BaseException]] = {}
        for i in inline:
            with self._lock:
                self._counters["inline"] += 1
            try:
                inline_results[i] = run(cfgs[i])
            except BaseException as exc:
                if not return_exceptions:
                    raise
                inline_results[i] = exc

        if self.jobs == 1:
            self._drain_inline(owned)
        else:
            self._drain_pool(owned)
        for rec in waiting:
            rec.done.wait()

        out: List[Union[RunResult, BaseException]] = []
        first_error: Optional[BaseException] = None
        for i, cfg in enumerate(cfgs):
            rec = slots[i]
            if rec is None:
                out.append(inline_results[i])
                continue
            rec.done.wait()
            if rec.ok:
                out.append(rec.result(cfg))
            else:
                err = rec.error or SchedulerError(f"task {rec.key} lost")
                if first_error is None:
                    first_error = err
                out.append(err)
        if first_error is not None and not return_exceptions:
            raise first_error
        return out

    def _probe_cache(self):
        """Parent-side run cache: the ambient one, else a private handle.

        The ambient cache (:func:`repro.cache.active_cache`) wins when
        installed so its hit/miss counters stay authoritative.  Otherwise
        a scheduler constructed with an explicit ``cache_dir`` opens its
        own handle, keeping warm short-circuits (and jobs=1 stores)
        working without process-global configuration.
        """
        from repro.cache import RunCache, active_cache

        cache = active_cache()
        if cache is not None:
            return cache
        if self.cache_dir is None:
            return None
        if self._cache is None:
            self._cache = RunCache(self.cache_dir)
        return self._cache

    # -- inline (jobs=1) execution -------------------------------------------
    def _drain_inline(self, owned: Sequence[TaskRecord]) -> None:
        from repro.cache import active_cache
        from repro.core.runner import run

        for rec in owned:
            rec.state = TaskState.RUNNING
            t0 = time.perf_counter()
            try:
                result = run(rec.cfg)
            except BaseException as exc:
                self._finish_failure(rec, exc)
                continue
            # ``run`` stores through the ambient cache when one is
            # installed; with only a private ``cache_dir`` handle, mirror
            # the worker protocol here (authoritative miss, then store) so
            # jobs=1 leaves the same on-disk artifacts a pool would.
            cache = self._probe_cache()
            if cache is not None and cache is not active_cache():
                if cache.get(rec.cfg) is None:
                    cache.put(rec.cfg, result)
            payload = {
                "elapsed_s": result.elapsed_s,
                "phases": dict(result.phases),
                "comm_stats": dict(result.comm_stats),
                "wall_s": time.perf_counter() - t0,
            }
            self._finish_success(rec, payload)

    # -- pool draining --------------------------------------------------------
    def _quarantining(self) -> bool:
        """Whether the pool is reserved for solo confirmation runs."""
        return bool(self._quarantine) or self._qactive is not None or bool(
            self._parked
        )

    def _pump(self) -> None:
        """Advance the quarantine (caller holds the lock).

        Submits the next quarantined record *solo*; once the quarantine is
        empty, flushes every parked record back into the pool in parallel.
        """
        if self._qactive is not None:
            if not self._qactive.done.is_set():
                return  # solo run in progress
            self._qactive = None
        while self._quarantine:
            rec = self._quarantine.pop(0)
            if rec.done.is_set():
                continue
            self._submit_record(rec)
            self._qactive = rec
            return
        if self._parked:
            parked, self._parked = self._parked, []
            for rec in parked:
                if not rec.done.is_set():
                    self._submit_record(rec)

    def _drain_pool(self, owned: Sequence[TaskRecord]) -> None:
        """Wait for owned records, recovering from broken pools.

        Event-driven: every submitted future carries a done-callback
        that signals ``self._cond`` (as do the ``_finish_*`` paths and
        crash recovery), so each pass only scans this call's still
        pending records for settled futures — no per-iteration waiter
        registration on every pending future, which made large batches
        quadratic in future-lock traffic. The wait timeout is a safety
        net for records parked behind a quarantine, whose future is
        ``None`` until the pump resubmits them.
        """
        pending = [rec for rec in owned if not rec.done.is_set()]
        while pending:
            ready: List[Any] = []
            with self._cond:
                self._pump()
                pending = [r for r in pending if not r.done.is_set()]
                if not pending:
                    return
                for rec in pending:
                    fut = rec.future
                    if fut is not None and fut.done():
                        ready.append((rec, fut))
                if not ready:
                    self._cond.wait(timeout=0.05)
                    continue
            for rec, fut in ready:
                with self._lock:
                    if rec.done.is_set() or rec.future is not fut:
                        continue  # settled or resubmitted by another drainer
                exc = fut.exception()
                if exc is None:
                    payload = fut.result()
                    self._merge_cache_delta(payload.pop("cache_delta", None))
                    rec.worker_pid = payload.pop("pid", None)
                    self._finish_success(rec, payload)
                elif isinstance(exc, BrokenExecutor):
                    self._on_broken(fut, rec)
                else:
                    self._finish_failure(rec, exc)

    def _on_broken(self, fut: Future, rec: TaskRecord) -> None:
        """Rebuild the pool after a worker crash; assign blame.

        Every in-flight record with a live future is a *suspect*.  One
        suspect means exact blame (it was running solo): bump its count
        and poison past ``max_retries``.  Several suspects mean ambiguous
        blame: bump everyone and resubmit, except that a suspect past the
        bound goes to the quarantine for a solo confirmation run instead
        of being poisoned on circumstantial evidence.
        """
        with self._lock:
            if rec.done.is_set() or rec.future is not fut:
                return  # this crash was already handled by another drainer
            self._counters["crashes"] += 1
            self._rebuild_pool()
            suspects = [
                r
                for r in self._inflight.values()
                if not r.done.is_set() and r.future is not None
            ]
            for r in suspects:
                r.future = None
                r.attempts += 1
            if self._qactive is not None and self._qactive.future is None:
                self._qactive = None  # the solo run itself crashed
            solo = len(suspects) == 1
            over = [r for r in suspects if r.attempts > self.max_retries]
            under = [r for r in suspects if r.attempts <= self.max_retries]
            if solo and over:
                self._finish_poisoned(over[0])  # exact blame
                return
            for r in over:
                self._counters["retries"] += 1
                log.warning(
                    "worker crash: %s exceeded %d retries under ambiguous "
                    "blame; quarantining for a solo confirmation run",
                    r, self.max_retries,
                )
                self._quarantine.append(r)
            for r in under:
                self._counters["retries"] += 1
                log.warning(
                    "worker crash: retrying %s (attempt %d/%d)",
                    r, r.attempts, self.max_retries,
                )
                if self._quarantining():
                    self._parked.append(r)  # resumes after the quarantine
                else:
                    self._submit_record(r)
            self._cond.notify_all()  # futures were nulled: drainers re-pump

    # -- completion bookkeeping ----------------------------------------------
    def _merge_cache_delta(self, delta: Optional[Dict[str, int]]) -> None:
        if not delta:
            return
        from repro.cache import merge_stats

        merge_stats(delta)

    def _finish_success(self, rec: TaskRecord, payload: Dict[str, Any]) -> None:
        with self._lock:
            if rec.done.is_set():
                return
            rec.wall_s = payload.pop("wall_s", None)
            payload.pop("key", None)
            rec.payload = payload
            rec.state = TaskState.DONE
            self._memo[rec.key] = rec
            self._inflight.pop(rec.key, None)
            self._counters["simulated"] += 1
            if rec.wall_s is not None:
                self.wall_times.append(rec.wall_s)
                self._note_straggler(rec)
            if self.journal is not None:
                self.journal.record(rec.key, payload)
            rec.done.set()
            self._cond.notify_all()

    def _finish_failure(self, rec: TaskRecord, exc: BaseException) -> None:
        with self._lock:
            if rec.done.is_set():
                return
            rec.error = exc
            rec.state = TaskState.FAILED
            self._memo[rec.key] = rec
            self._inflight.pop(rec.key, None)
            self._counters["failed"] += 1
            log.warning("task failed: %s: %s", rec, exc)
            rec.done.set()
            self._cond.notify_all()

    def _finish_poisoned(self, rec: TaskRecord) -> None:
        # Caller holds the lock (only reached from _handle_broken_pool).
        rec.error = PoisonedConfigError(rec.cfg, rec.attempts)
        rec.state = TaskState.POISONED
        self._memo[rec.key] = rec
        self._inflight.pop(rec.key, None)
        self._counters["poisoned"] += 1
        self.poisoned.append(rec.describe())
        log.error("poisoned config: %s", rec.error)
        rec.done.set()
        self._cond.notify_all()

    def _note_straggler(self, rec: TaskRecord) -> None:
        """Log tasks whose wall time dwarfs the running median."""
        if len(self.wall_times) < 4 or rec.wall_s is None:
            return
        median = statistics.median(self.wall_times)
        if median > 0 and rec.wall_s > self.straggler_factor * median:
            entry = rec.describe()
            entry["median_s"] = median
            self.straggler_log.append(entry)
            log.info(
                "straggler: %s took %.3fs (median %.3fs)",
                rec, rec.wall_s, median,
            )

    # -- telemetry ------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        """Snapshot of every counter (all names always present)."""
        with self._lock:
            return dict(self._counters)

    def summary(self) -> str:
        """One greppable line for CLIs and CI logs."""
        s = self.stats()
        parts = " ".join(f"{k.replace('_', '-')}={s[k]}" for k in COUNTER_NAMES)
        return f"scheduler: jobs={self.jobs} {parts}"


#: The process-wide scheduler consulted by sweep/autotune/replica drivers.
_active: Optional[Scheduler] = None


def configure(jobs: Optional[int] = None, **kwargs) -> Optional[Scheduler]:
    """Install (or, with ``None``, remove) the process-wide scheduler.

    The previous scheduler, if any, is closed.  Keyword arguments go to
    :class:`Scheduler`.
    """
    global _active
    if _active is not None:
        _active.close()
    _active = Scheduler(jobs=jobs, **kwargs) if jobs is not None else None
    return _active


def active_scheduler() -> Optional[Scheduler]:
    """The currently installed scheduler, if any."""
    return _active


@contextmanager
def scheduled(jobs: int, **kwargs):
    """Temporarily install a process-wide scheduler (restores the prior)."""
    global _active
    prev = _active
    sched = Scheduler(jobs=jobs, **kwargs)
    _active = sched
    try:
        yield sched
    finally:
        _active = prev
        sched.close()
