"""Atomic shard leases: work-stealing across whole scheduler processes.

PR 5's crash recovery handles a *worker* process dying under one
scheduler; the lease layer generalizes that to the death of a whole
scheduler process in a multi-scheduler sweep (``repro.sched.fabric``).
N independent schedulers share a lease directory; each task shard is
guarded by one lease file and executed by whoever holds it.

Protocol
--------
* **Acquire**: create ``<root>/<name>.lease`` with ``O_CREAT|O_EXCL`` —
  the POSIX-atomic "exactly one creator wins" primitive (works on local
  and NFS v3+ filesystems without flock).
* **Expiry**: the file carries ``expires`` (unix time, ``ttl`` seconds
  out) refreshed by ``renew``.  A scheduler that dies stops renewing;
  once the clock passes ``expires`` any peer may *steal*.
* **Steal**: write a fresh lease to a temp file, ``os.replace`` it over
  the expired one, then read it back and verify the embedded random
  nonce — the replace is atomic, and the read-back arbitrates the race
  where two peers steal the same expired lease in the same instant.
* **Release**: unlink, but only after verifying ownership.

The protocol is advisory and crash-safe rather than strictly mutual —
a clock-skewed or paused owner may overlap with its thief for one shard.
That is *correct by construction* here: shard execution is idempotent
(results are content-addressed by config key, journal duplicates are
bit-identical and last-write-wins), so the lease only prevents wasted
work, never corruption.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict, List, Optional

__all__ = ["ShardLeases", "LEASE_VERSION"]

#: Lease file format version.
LEASE_VERSION = 1


def _nonce() -> str:
    return os.urandom(8).hex()


class ShardLeases:
    """Lease files for named shards under one directory.

    Parameters
    ----------
    root:
        Lease directory, shared by every participating scheduler.
    owner:
        This scheduler's identity (defaults to ``host:pid``); recorded in
        every lease it takes.
    ttl:
        Seconds a lease stays valid without a ``renew``.  Must comfortably
        exceed the renew cadence but stay small enough that a dead peer's
        shard is handed over quickly.
    """

    def __init__(self, root: str, owner: Optional[str] = None, ttl: float = 30.0):
        if ttl <= 0:
            raise ValueError(f"ttl must be > 0, got {ttl}")
        self.root = str(root)
        self.owner = owner or f"{os.uname().nodename}:{os.getpid()}"
        self.ttl = float(ttl)
        os.makedirs(self.root, exist_ok=True)
        #: shard name -> nonce of the lease this instance holds
        self._held: Dict[str, str] = {}

    # -- plumbing -------------------------------------------------------------
    def _path(self, name: str) -> str:
        return os.path.join(self.root, f"{name}.lease")

    def _doc(self, nonce: str) -> Dict[str, Any]:
        return {
            "v": LEASE_VERSION,
            "owner": self.owner,
            "nonce": nonce,
            "expires": time.time() + self.ttl,
        }

    def _read(self, name: str) -> Optional[Dict[str, Any]]:
        try:
            with open(self._path(name), "r", encoding="utf-8") as fh:
                doc = json.load(fh)
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return None
        return doc if isinstance(doc, dict) else None

    def _write_over(self, name: str, nonce: str) -> None:
        """Atomically replace a lease file (steal/renew path)."""
        tmp = self._path(name) + f".{self.owner.replace('/', '_')}.{nonce}.tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(self._doc(nonce), fh)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self._path(name))

    def _verify(self, name: str, nonce: str) -> bool:
        """Read the lease back: did *our* write survive the race?"""
        doc = self._read(name)
        won = bool(doc) and doc.get("nonce") == nonce
        if won:
            self._held[name] = nonce
        else:
            self._held.pop(name, None)
        return won

    # -- protocol -------------------------------------------------------------
    def acquire(self, name: str) -> bool:
        """Try to take the lease for ``name``; never blocks.

        Returns ``True`` when this scheduler now holds a fresh lease —
        either by creating it (``O_CREAT|O_EXCL``) or by stealing an
        expired one.  ``False`` means a live peer holds it.
        """
        nonce = _nonce()
        try:
            fd = os.open(
                self._path(name), os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644
            )
        except FileExistsError:
            return self._try_steal(name, nonce)
        except OSError:
            return False
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(self._doc(nonce), fh)
                fh.flush()
                os.fsync(fh.fileno())
        except OSError:
            return False
        self._held[name] = nonce
        return True

    def _try_steal(self, name: str, nonce: str) -> bool:
        doc = self._read(name)
        if doc is not None:
            try:
                expires = float(doc.get("expires", 0.0))
            except (TypeError, ValueError):
                expires = 0.0  # malformed lease: treat as expired
            if time.time() < expires:
                return False  # live peer
        # Expired (or unreadable — e.g. a peer died mid-create): replace
        # atomically and arbitrate via read-back.
        try:
            self._write_over(name, nonce)
        except OSError:
            return False
        return self._verify(name, nonce)

    def renew(self, name: str) -> bool:
        """Refresh a held lease's expiry; ``False`` when it was lost.

        Verifies ownership *first*: if a peer stole the lease after a
        false expiry (clock skew, a long GC pause), the renew must not
        clobber the thief — the caller learns it lost and backs off.
        """
        nonce = self._held.get(name)
        if nonce is None:
            return False
        doc = self._read(name)
        if not doc or doc.get("nonce") != nonce:
            self._held.pop(name, None)
            return False
        try:
            self._write_over(name, nonce)
        except OSError:
            return False
        return self._verify(name, nonce)

    def release(self, name: str) -> None:
        """Drop a held lease (no-op when not held or already stolen)."""
        nonce = self._held.pop(name, None)
        if nonce is None:
            return
        doc = self._read(name)
        if not doc or doc.get("nonce") != nonce:
            return  # stolen after expiry: the thief's lease is not ours
        try:
            os.unlink(self._path(name))
        except OSError:
            pass

    def holder(self, name: str) -> Optional[str]:
        """Owner string of the current (possibly expired) lease, if any."""
        doc = self._read(name)
        return doc.get("owner") if doc else None

    def held(self) -> List[str]:
        """Names this instance believes it holds (not re-verified)."""
        return sorted(self._held)
