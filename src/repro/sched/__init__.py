"""Parallel run scheduler: deduplicated task execution for config batches.

The paper's whole argument is that heterogeneous work should be scheduled
so nothing idles (CPU, GPU, MPI and PCIe overlap, Figs. 9-12).  This
package applies the same idea to our *own* regeneration pipeline: every
batch of :class:`~repro.core.config.RunConfig` points — tuning sweeps
(:mod:`repro.perf.sweep`), autotune candidate batches
(:mod:`repro.autotune.search`), Monte-Carlo replicas
(:func:`repro.core.runner.run_replicated`) and whole experiment grids
(:func:`repro.experiments.common.run_experiments`) — is expressed as a
set of independent tasks and handed to one shared
:class:`~repro.sched.scheduler.Scheduler`:

* **Dedup & coalescing** — tasks are keyed by the content-addressed cache
  key (:func:`repro.cache.config_key`), so each distinct config is
  simulated at most once per session; concurrent requesters of an
  in-flight config wait on the same task instead of resubmitting it.
* **Cache short-circuit** — warm entries of the run cache
  (:mod:`repro.cache`) are replayed in the parent without occupying a
  worker slot.
* **Crash resilience** — a worker process dying does not kill the batch:
  the pool is rebuilt, in-flight tasks are retried a bounded number of
  times, and a config that keeps crashing its worker is marked *poisoned*
  and reported instead of retried forever.
* **Resumable journal** — completed task results are appended to a JSONL
  journal (:mod:`repro.sched.journal`) under *group commit* (one
  flush+fsync per drain cycle, never surfacing an undurable result); a
  ``SIGKILL``-interrupted batch restarted against the same journal
  replays finished configs instead of re-simulating them.  At sweep
  scale the journal shards into per-key-prefix files
  (:class:`~repro.sched.journal.ShardedJournal`).
* **Multi-scheduler fabric** — N independent scheduler processes share
  one batch by leasing task shards via atomic lease files with expiry
  (:mod:`repro.sched.lease`, :mod:`repro.sched.fabric`); a dead
  scheduler's shard is stolen by a peer after the lease expires, and
  results stay bit-identical because execution is idempotent by content
  address.
* **Telemetry** — submitted / coalesced / cache-hit / journal-hit /
  simulated / failed / poisoned / retry counters, journal corruption
  tallies (torn / wrong-version / ill-shaped lines), per-task wall times
  and a straggler log, consumed by ``tools/perf_smoke.py`` and the
  ``advection-repro sweep`` CLI.

Results are **bit-identical** to the serial path: workers run the same
deterministic simulator, results travel back as exact floats, and the
journal stores them with full round-trip precision.
"""

from repro.sched.fabric import FabricResult, run_fabric, shard_of
from repro.sched.journal import Journal, ShardedJournal, open_journal
from repro.sched.lease import ShardLeases
from repro.sched.scheduler import (
    PoisonedConfigError,
    Scheduler,
    SchedulerError,
    active_scheduler,
    configure,
    scheduled,
)
from repro.sched.task import TaskRecord, TaskState
from repro.sched.validate import validate_config

__all__ = [
    "FabricResult",
    "Journal",
    "PoisonedConfigError",
    "Scheduler",
    "SchedulerError",
    "ShardLeases",
    "ShardedJournal",
    "TaskRecord",
    "TaskState",
    "active_scheduler",
    "configure",
    "open_journal",
    "run_fabric",
    "scheduled",
    "shard_of",
    "validate_config",
]
