"""Task records: one deduplicated unit of scheduler work."""

from __future__ import annotations

import enum
import threading
from typing import TYPE_CHECKING, Any, Dict, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.config import RunConfig

__all__ = ["TaskState", "TaskRecord"]


class TaskState(str, enum.Enum):
    """Lifecycle of one deduplicated config task."""

    #: created, not yet dispatched
    PENDING = "pending"
    #: dispatched to a worker (or running inline)
    RUNNING = "running"
    #: simulated successfully this session
    DONE = "done"
    #: short-circuited from the warm run cache (no worker occupied)
    CACHED = "cached"
    #: replayed from the resumable journal (no worker occupied)
    JOURNALED = "journaled"
    #: the simulator raised (deterministic failure; never retried)
    FAILED = "failed"
    #: crashed its worker more than ``max_retries`` times
    POISONED = "poisoned"


#: States in which a record carries a usable result payload.
_RESULT_STATES = (TaskState.DONE, TaskState.CACHED, TaskState.JOURNALED)


class TaskRecord:
    """One distinct config's task, shared by every requester of its key.

    The scheduler keys records by the content-addressed cache key
    (:func:`repro.cache.config_key`), so N requesters of the same config —
    within one batch, across batches, or across threads — share a single
    record and hence a single simulation.  ``done`` is set exactly once,
    when the record reaches a terminal state; coalesced requesters block
    on it instead of resubmitting.
    """

    __slots__ = (
        "key",
        "cfg",
        "state",
        "payload",
        "error",
        "attempts",
        "wall_s",
        "worker_pid",
        "done",
        "future",
        "t_submit",
        "blob",
    )

    def __init__(self, key: str, cfg: "RunConfig"):
        self.key = key
        self.cfg = cfg
        self.state = TaskState.PENDING
        #: scalar result payload: {"elapsed_s", "phases", "comm_stats"}
        self.payload: Optional[Dict[str, Any]] = None
        #: terminal exception (FAILED: the simulator's; POISONED: ours)
        self.error: Optional[BaseException] = None
        #: worker crashes survived so far (bounded by ``max_retries``)
        self.attempts = 0
        #: wall-clock seconds of the successful execution (simulated only)
        self.wall_s: Optional[float] = None
        self.worker_pid: Optional[int] = None
        self.done = threading.Event()
        self.future = None
        self.t_submit: Optional[float] = None
        #: task payload pickled exactly once (reused across crash retries,
        #: shipped inside size-tuned chunks; see Scheduler._submit_chunk)
        self.blob: Optional[bytes] = None

    # -- results --------------------------------------------------------------
    @property
    def ok(self) -> bool:
        """Whether this record carries a usable result payload."""
        return self.state in _RESULT_STATES

    def result(self, cfg: "RunConfig"):
        """Materialize a fresh :class:`RunResult` for one requester.

        Each requester gets its own result object (the payload dicts are
        copied), bound to the *requester's* config instance — bit-identical
        to what a serial :func:`repro.core.runner.run` call would return,
        because the payload stores exact floats.
        """
        if not self.ok:
            raise (self.error or RuntimeError(f"task {self.key} has no result"))
        from repro.core.config import RunResult

        p = self.payload
        return RunResult(
            config=cfg,
            elapsed_s=p["elapsed_s"],
            phases=dict(p["phases"]),
            comm_stats=dict(p["comm_stats"]),
        )

    def describe(self) -> Dict[str, Any]:
        """Telemetry-friendly summary (key prefix, config, state, timing)."""
        c = self.cfg
        return {
            "key": self.key[:12],
            "machine": c.machine.name,
            "implementation": c.implementation,
            "cores": c.cores,
            "threads_per_task": c.threads_per_task,
            "box_thickness": c.box_thickness,
            "state": self.state.value,
            "attempts": self.attempts,
            "wall_s": self.wall_s,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        c = self.cfg
        return (
            f"<TaskRecord {self.key[:12]} {c.implementation}@{c.machine.name}"
            f" cores={c.cores} {self.state.value}>"
        )
