"""Process-pool worker side of the scheduler (top-level, picklable).

Workers are plain processes running the same deterministic simulator as
the parent: a task's result depends only on its config, so executing in a
pool is bit-identical to executing serially.  Each worker configures its
own :mod:`repro.cache` handle on the shared cache directory (writes are
atomic, so concurrent workers are safe) and ships per-task *deltas* of
its hit/miss/store counters back to the parent for aggregate reporting.

Fault injection: a payload carrying ``"crash": True`` makes the worker
die via ``os._exit`` *before* touching the simulator.  The scheduler's
``fault_injector`` hook sets the flag per (config, attempt); tests and
the CI crash-retry smoke use it to exercise the broken-pool recovery
path deterministically.
"""

from __future__ import annotations

import os
import pickle
import time
from typing import Any, Dict, List, Sequence, Union

__all__ = ["init_worker", "execute_task", "execute_chunk", "CRASH_EXIT_CODE"]

#: Exit code of a deliberately crashed worker (fault injection).
CRASH_EXIT_CODE = 78


def init_worker(cache_dir) -> None:
    """Pool initializer: give the worker its own run-cache handle.

    ``cache_dir=None`` removes any fork-inherited cache so the worker's
    behaviour does not depend on the parent's module state.
    """
    from repro import cache

    cache.configure(cache_dir)


def _execute_one(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Simulate one config; return its scalar result payload.

    The returned floats are the exact simulator outputs (pickle round-trips
    floats losslessly).
    """
    from repro import cache
    from repro.core.runner import run

    before = cache.stats()
    t0 = time.perf_counter()
    result = run(payload["cfg"])
    wall_s = time.perf_counter() - t0
    after = cache.stats()
    return {
        "key": payload["key"],
        "elapsed_s": result.elapsed_s,
        "phases": dict(result.phases),
        "comm_stats": dict(result.comm_stats),
        "wall_s": wall_s,
        "pid": os.getpid(),
        "cache_delta": {k: after[k] - before[k] for k in after},
    }


def execute_task(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Single-task entry point (kept for solo/compat submissions).

    Simulator exceptions propagate to the parent through the future — the
    scheduler records them as deterministic task failures, not crashes.
    """
    if payload.get("crash"):
        # Deliberate worker death (fault injection): bypasses Python
        # exception handling entirely, exactly like a segfaulting worker.
        os._exit(CRASH_EXIT_CODE)
    return _execute_one(payload)


def _picklable(exc: BaseException) -> BaseException:
    """The exception itself if it survives pickling, else a stand-in.

    A chunk outcome travels back through the pool as data, so an
    unpicklable simulator exception must be replaced before the return
    pickle would break the whole chunk future.
    """
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return RuntimeError(f"{type(exc).__name__}: {exc}")


def execute_chunk(
    items: Sequence[Union[bytes, Dict[str, Any]]],
) -> List[Dict[str, Any]]:
    """Chunked entry point: run several pre-pickled task payloads.

    Each item is either the parent's once-pickled ``{"cfg", "key"}`` blob
    (unpickled here, so the parent never re-serializes a payload across
    retries) or a small marker dict (fault injection).  Per-task simulator
    exceptions come back *as data* (``{"key", "error"}``) so one failing
    config stays a task failure instead of poisoning its chunk-mates;
    only a genuine worker death breaks the future.
    """
    out: List[Dict[str, Any]] = []
    for item in items:
        payload = pickle.loads(item) if isinstance(item, bytes) else item
        if payload.get("crash"):
            os._exit(CRASH_EXIT_CODE)
        try:
            out.append(_execute_one(payload))
        except BaseException as exc:
            out.append({"key": payload.get("key"), "error": _picklable(exc)})
    return out
