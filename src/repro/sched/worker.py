"""Process-pool worker side of the scheduler (top-level, picklable).

Workers are plain processes running the same deterministic simulator as
the parent: a task's result depends only on its config, so executing in a
pool is bit-identical to executing serially.  Each worker configures its
own :mod:`repro.cache` handle on the shared cache directory (writes are
atomic, so concurrent workers are safe) and ships per-task *deltas* of
its hit/miss/store counters back to the parent for aggregate reporting.

Fault injection: a payload carrying ``"crash": True`` makes the worker
die via ``os._exit`` *before* touching the simulator.  The scheduler's
``fault_injector`` hook sets the flag per (config, attempt); tests and
the CI crash-retry smoke use it to exercise the broken-pool recovery
path deterministically.
"""

from __future__ import annotations

import os
import time
from typing import Any, Dict

__all__ = ["init_worker", "execute_task", "CRASH_EXIT_CODE"]

#: Exit code of a deliberately crashed worker (fault injection).
CRASH_EXIT_CODE = 78


def init_worker(cache_dir) -> None:
    """Pool initializer: give the worker its own run-cache handle.

    ``cache_dir=None`` removes any fork-inherited cache so the worker's
    behaviour does not depend on the parent's module state.
    """
    from repro import cache

    cache.configure(cache_dir)


def execute_task(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Simulate one config; return its scalar result payload.

    The returned floats are the exact simulator outputs (pickle round-trips
    floats losslessly).  Simulator exceptions propagate to the parent
    through the future — the scheduler records them as deterministic task
    failures, not crashes.
    """
    if payload.get("crash"):
        # Deliberate worker death (fault injection): bypasses Python
        # exception handling entirely, exactly like a segfaulting worker.
        os._exit(CRASH_EXIT_CODE)

    from repro import cache
    from repro.core.runner import run

    before = cache.stats()
    t0 = time.perf_counter()
    result = run(payload["cfg"])
    wall_s = time.perf_counter() - t0
    after = cache.stats()
    return {
        "key": payload["key"],
        "elapsed_s": result.elapsed_s,
        "phases": dict(result.phases),
        "comm_stats": dict(result.comm_stats),
        "wall_s": wall_s,
        "pid": os.getpid(),
        "cache_delta": {k: after[k] - before[k] for k in after},
    }
