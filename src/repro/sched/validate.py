"""Eager config validation: classify invalid sweep points without simulating.

Sweeps legitimately contain invalid combinations (a box thickness too
thick for the subdomain, a single-task implementation asked for several
nodes, a task count with no valid grid).  Historically those were found
*during* simulation and the sweep driver swallowed every ``ValueError``
from :func:`repro.core.runner.run` — which also hid real model and
runtime errors as "invalid points".

:func:`validate_config` re-derives the run-time feasibility rules up
front, so drivers can skip (and count) genuinely invalid points eagerly
and let any error raised by the simulator itself propagate.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.config import RunConfig

__all__ = ["validate_config"]


def validate_config(cfg: "RunConfig") -> None:
    """Raise ``ValueError`` iff the simulator would reject ``cfg``.

    Checks, in order (all are re-derivations of checks the simulator
    performs at run time, none of them simulate anything):

    * workload-level constraints (:meth:`Workload.validate`: unknown or
      out-of-range ``workload_params``, problem too small for the task
      count);
    * implementation-level constraints (:meth:`Implementation.validate`:
      GPU presence, single-task core limits, box feasibility for the
      hybrid implementations);
    * decomposition feasibility (a valid task grid / row partition
      exists for this task count);
    * GPU thread-block admissibility when an explicit ``block`` is set.

    A config that passes is expected to simulate without ``ValueError``;
    anything the simulator raises afterwards is a genuine error, not an
    invalid sweep point.
    """
    from repro.workloads import get_workload

    workload = get_workload(cfg.workload)
    impl = workload.implementation(cfg.implementation)
    workload.validate(cfg)
    impl.validate(cfg)
    # Raises when no non-empty partition exists for this task count.
    workload.decompose(cfg)
    if impl.uses_gpu and cfg.block is not None:
        from repro.simgpu.blockmodel import admissible_blocks

        block = tuple(cfg.block)
        if block not in set(admissible_blocks(cfg.machine.gpu)):
            raise ValueError(
                f"block {block} not admissible on {cfg.machine.gpu.name}"
            )
