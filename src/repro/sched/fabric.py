"""Multi-scheduler sweep fabric: leased shards over a shared journal.

``run_fabric`` lets N independent scheduler *processes* (started by
hand, by CI, or across a cluster over a shared filesystem) chew through
one large config batch cooperatively:

* The batch is deduplicated by content-addressed cache key and
  partitioned into **task shards** by key prefix
  (:func:`shard_of`) — the same two-hex-char prefix that names the
  sharded journal and cache files, so a shard's lease holder is the
  *only* writer of its journal inodes.
* Each shard is guarded by an atomic lease file with expiry
  (:class:`~repro.sched.lease.ShardLeases`).  A scheduler acquires a
  shard, runs its configs through a normal :class:`Scheduler`
  (dedup, cache short-circuit, crash retry, group-committed journal),
  renews the lease while working, and releases it when the shard's
  results are durable.
* A scheduler that **dies** simply stops renewing; after ``ttl`` any
  peer steals the lease and re-runs the shard.  Whatever the dead peer
  already committed replays from the shared journal, so only its
  unflushed tail is re-simulated.
* Progress by *other* schedulers is observed via
  :meth:`ShardedJournal.refresh`: a shard whose keys are all journaled
  is complete regardless of who ran it.

Correctness does not depend on lease exclusivity: execution is
idempotent by content address (duplicate journal lines are
bit-identical, last write wins), so overlapping holders only waste
work.  Results are assembled from the journal in request order and are
**bit-identical to a serial run** — floats round-trip exactly, and the
simulator is deterministic per config.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.config import RunConfig, RunResult
from repro.sched.journal import ShardedJournal
from repro.sched.lease import ShardLeases
from repro.sched.scheduler import Scheduler, SchedulerError

__all__ = ["shard_of", "run_fabric", "FabricResult"]

#: Default number of task shards a fabric batch is partitioned into.
DEFAULT_NSHARDS = 16


def shard_of(key: str, nshards: int = DEFAULT_NSHARDS) -> int:
    """Task shard of a cache key: its journal prefix modulo ``nshards``.

    Deriving the shard from the *prefix* (not the whole key) keeps every
    journal/cache file prefix owned by exactly one task shard, so
    concurrent lease holders never append to the same journal inode.
    """
    if not 1 <= nshards <= 256:
        raise ValueError(f"nshards must be in [1, 256], got {nshards}")
    return int(key[:2], 16) % nshards


@dataclass
class FabricResult:
    """Outcome of one scheduler's participation in a fabric batch."""

    #: results for the *requested* configs, in request order
    results: List[RunResult]
    #: this scheduler's identity (lease owner string)
    owner: str
    #: shards this scheduler executed itself
    shards_run: List[int] = field(default_factory=list)
    #: shards observed complete (journaled) without running them
    shards_replayed: int = 0
    #: scheduler counters (see Scheduler.stats)
    stats: Dict[str, int] = field(default_factory=dict)
    #: journal telemetry (entries + corruption tallies)
    journal_counts: Dict[str, int] = field(default_factory=dict)

    def summary(self) -> str:
        """One greppable line for CLIs and CI logs."""
        c = self.journal_counts
        return (
            f"fabric: owner={self.owner} shards-run={len(self.shards_run)}"
            f" shards-replayed={self.shards_replayed}"
            f" results={len(self.results)}"
            f" journal-entries={c.get('entries', 0)}"
            f" journal-torn={c.get('torn', 0)}"
            f" journal-wrong-version={c.get('wrong_version', 0)}"
            f" journal-ill-shaped={c.get('ill_shaped', 0)}"
        )


def run_fabric(
    configs: Iterable[RunConfig],
    root: str,
    *,
    owner: Optional[str] = None,
    jobs: int = 1,
    nshards: int = DEFAULT_NSHARDS,
    ttl: float = 30.0,
    cache_dir: Optional[str] = None,
    poll_interval: float = 0.05,
    timeout: Optional[float] = 600.0,
) -> FabricResult:
    """Run a config batch cooperatively with any concurrent peers.

    ``root`` holds the shared state (``<root>/journal`` sharded journal,
    ``<root>/leases`` lease files); every participating scheduler is
    pointed at the same directory and calls this with the same (or an
    overlapping) batch.  Returns once *every* requested config has a
    durable journal entry — whether this scheduler simulated it, replayed
    it from cache/journal, or watched a peer commit it.

    ``timeout`` bounds the time spent *waiting without progress* on
    shards leased by peers (``None`` disables the bound); a dead peer's
    shard is stolen after ``ttl`` seconds, so the default comfortably
    covers recovery.
    """
    from repro.cache import cacheable, config_key

    journal = ShardedJournal(os.path.join(root, "journal"))
    leases = ShardLeases(os.path.join(root, "leases"), owner=owner, ttl=ttl)

    # Dedup by content address; shard by key prefix. The forced-noise
    # override is resolved here exactly as Scheduler.map would, so the
    # fabric keys and the scheduler keys always agree.
    order: List[str] = []
    tasks: Dict[str, RunConfig] = {}
    for cfg in configs:
        cfg = Scheduler._forced(cfg)
        if not cacheable(cfg):
            raise SchedulerError(
                "fabric batches must be cacheable (no functional/traced "
                f"runs): {cfg.implementation}@{cfg.machine.name}"
            )
        key = config_key(cfg)
        order.append(key)
        tasks.setdefault(key, cfg)
    shards: Dict[int, List[str]] = {}
    for key in tasks:
        shards.setdefault(shard_of(key, nshards), []).append(key)

    sched = Scheduler(jobs=jobs, cache_dir=cache_dir, journal=journal)
    result = FabricResult(results=[], owner=leases.owner)
    pending = set(shards)
    deadline = None if timeout is None else time.monotonic() + timeout
    try:
        while pending:
            progress = False
            journal.refresh()  # peers' committed shards become visible
            for s in sorted(pending):
                keys = shards[s]
                if all(k in journal for k in keys):
                    pending.discard(s)
                    result.shards_replayed += 1
                    progress = True
                    continue
                lease_name = f"shard-{s:03d}"
                if not leases.acquire(lease_name):
                    continue  # a live peer is working this shard
                stop = threading.Event()

                def _renew() -> None:
                    # Keep the lease alive while the shard executes; stop
                    # renewing the moment it is lost (a peer stole it after
                    # a false expiry — execution stays correct, idempotent).
                    while not stop.wait(ttl / 3.0):
                        if not leases.renew(lease_name):
                            return

                renewer = threading.Thread(target=_renew, daemon=True)
                renewer.start()
                try:
                    sched.map([tasks[k] for k in keys])
                finally:
                    stop.set()
                    renewer.join()
                    leases.release(lease_name)
                pending.discard(s)
                result.shards_run.append(s)
                progress = True
            if pending and not progress:
                if deadline is not None and time.monotonic() > deadline:
                    raise SchedulerError(
                        f"fabric timed out waiting on shards {sorted(pending)} "
                        f"leased by peers (no progress for {timeout}s total)"
                    )
                time.sleep(poll_interval)
        # Assemble results in request order from the shared journal. All
        # entries are durable (map flushes before returning; peers'
        # entries were read *from* the journal), and floats round-trip
        # exactly, so this is bit-identical to a serial run.
        journal.refresh()
        for key in order:
            payload = journal.get(key)
            if payload is None:  # pragma: no cover - defensive
                raise SchedulerError(f"fabric lost journal entry {key[:12]}")
            result.results.append(
                RunResult(
                    config=tasks[key],
                    elapsed_s=payload["elapsed_s"],
                    phases=dict(payload["phases"]),
                    comm_stats=dict(payload["comm_stats"]),
                )
            )
        result.stats = sched.stats()
        result.journal_counts = journal.counts()
    finally:
        sched.close()  # flushes and closes the journal too
    return result
