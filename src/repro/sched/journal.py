"""Resumable JSONL journal of completed scheduler tasks.

One line per completed config, keyed by the content-addressed cache key
(:func:`repro.cache.config_key`).  Because the key already folds in the
full config, the machine spec and :data:`repro.cache.MODEL_VERSION`,
entries self-invalidate across model changes — a stale journal simply
stops matching.

Durability: every line is flushed and fsync'd as it is appended, so a
``SIGKILL`` mid-batch loses at most the line being written.  On load, a
truncated/corrupt trailing line (the torn write) is skipped, never fatal.
Floats round-trip exactly through JSON in CPython, so a journal replay is
bit-identical to the original simulation.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterator, Optional

__all__ = ["Journal"]

#: Journal line format version (bumped on incompatible payload changes).
JOURNAL_VERSION = 1


class Journal:
    """Append-only JSONL store of completed task payloads, keyed by config."""

    def __init__(self, path: str):
        self.path = str(path)
        parent = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(parent, exist_ok=True)
        #: entries recovered from a previous (possibly killed) session
        self.entries: Dict[str, Dict[str, Any]] = {}
        self.corrupt_lines = 0
        self._load()
        # Line-buffered append handle; each record is one write+flush+fsync.
        self._fh = open(self.path, "a", encoding="utf-8")

    # -- load -----------------------------------------------------------------
    def _load(self) -> None:
        try:
            fh = open(self.path, "r", encoding="utf-8")
        except OSError:
            return
        with fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    doc = json.loads(line)
                except json.JSONDecodeError:
                    # Torn trailing write after a kill — skip, never fatal.
                    self.corrupt_lines += 1
                    continue
                if (
                    not isinstance(doc, dict)
                    or doc.get("v") != JOURNAL_VERSION
                    or not isinstance(doc.get("key"), str)
                ):
                    self.corrupt_lines += 1
                    continue
                try:
                    payload = {
                        "elapsed_s": float(doc["elapsed_s"]),
                        "phases": {
                            str(k): float(v) for k, v in doc["phases"].items()
                        },
                        "comm_stats": {
                            str(k): int(v) for k, v in doc["comm_stats"].items()
                        },
                    }
                except (KeyError, TypeError, ValueError, AttributeError):
                    self.corrupt_lines += 1
                    continue
                # Last write wins (duplicates are bit-identical anyway).
                self.entries[doc["key"]] = payload

    # -- lookup ---------------------------------------------------------------
    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """Payload for ``key`` from a previous session, or ``None``."""
        return self.entries.get(key)

    def __contains__(self, key: str) -> bool:
        return key in self.entries

    def __len__(self) -> int:
        return len(self.entries)

    def keys(self) -> Iterator[str]:
        return iter(self.entries)

    # -- append ---------------------------------------------------------------
    def record(self, key: str, payload: Dict[str, Any]) -> None:
        """Durably append one completed task's scalar payload."""
        doc = {
            "v": JOURNAL_VERSION,
            "key": key,
            "elapsed_s": payload["elapsed_s"],
            "phases": payload["phases"],
            "comm_stats": payload["comm_stats"],
        }
        self._fh.write(json.dumps(doc, sort_keys=True) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self.entries[key] = {
            "elapsed_s": payload["elapsed_s"],
            "phases": dict(payload["phases"]),
            "comm_stats": dict(payload["comm_stats"]),
        }

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
