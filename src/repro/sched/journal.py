"""Resumable JSONL journal of completed scheduler tasks.

One line per completed config, keyed by the content-addressed cache key
(:func:`repro.cache.config_key`).  Because the key already folds in the
full config, the machine spec and :data:`repro.cache.MODEL_VERSION`,
entries self-invalidate across model changes — a stale journal simply
stops matching.

Durability: group commit
------------------------
Appends are buffered and committed in groups — one ``write+flush+fsync``
per drain cycle instead of one per line (``flush_max_records`` /
``flush_interval`` bound how long a record may sit in the buffer).  The
scheduler preserves the invariant that **a result is never surfaced to a
caller before its record is durable**: it flushes the journal after its
drain loops settle and before ``map()`` assembles return values, so a
``SIGKILL`` loses only records whose results were never returned.  On
load, a truncated/corrupt trailing line (the torn tail of a batched
write) is skipped, never fatal, and corruption is tallied by kind
(``torn_lines`` / ``wrong_version_lines`` / ``ill_shaped_lines``) for
the telemetry summary.  Floats round-trip exactly through JSON in
CPython, so a journal replay is bit-identical to the original
simulation.

Sharded layout
--------------
:class:`ShardedJournal` spreads the same line format over per-prefix
files (``<root>/<key[:2]>.jsonl``, 256 shards keyed like the run
cache), loaded lazily per shard: resume is an O(shard) scan, and
concurrent schedulers holding disjoint shard leases (see
:mod:`repro.sched.lease`) never contend on one inode.  ``refresh()``
re-reads shards that grew on disk, making a peer scheduler's durable
progress visible.  :func:`open_journal` picks the layout from the path:
an existing file (or a ``.jsonl``/``.json`` suffix) means the flat
single-file journal, anything else the sharded one.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = ["Journal", "ShardedJournal", "open_journal", "JOURNAL_VERSION"]

#: Journal line format version (bumped on incompatible payload changes).
JOURNAL_VERSION = 1

#: Group-commit bounds: a buffered record is committed after at most this
#: many pending lines / this many seconds, whichever comes first.
DEFAULT_FLUSH_MAX_RECORDS = 64
DEFAULT_FLUSH_INTERVAL = 0.25


def _encode_line(key: str, payload: Dict[str, Any]) -> str:
    doc = {
        "v": JOURNAL_VERSION,
        "key": key,
        "elapsed_s": payload["elapsed_s"],
        "phases": payload["phases"],
        "comm_stats": payload["comm_stats"],
    }
    return json.dumps(doc, sort_keys=True) + "\n"


def _decode_line(
    line: str, tallies: Dict[str, int]
) -> Optional[Tuple[str, Dict[str, Any]]]:
    """Parse one journal line; tally (and skip) corruption by kind."""
    try:
        doc = json.loads(line)
    except json.JSONDecodeError:
        # Torn trailing write after a kill — skip, never fatal.
        tallies["torn"] += 1
        return None
    if not isinstance(doc, dict) or not isinstance(doc.get("key"), str):
        tallies["ill_shaped"] += 1
        return None
    if doc.get("v") != JOURNAL_VERSION:
        tallies["wrong_version"] += 1
        return None
    try:
        payload = {
            "elapsed_s": float(doc["elapsed_s"]),
            "phases": {str(k): float(v) for k, v in doc["phases"].items()},
            "comm_stats": {
                str(k): int(v) for k, v in doc["comm_stats"].items()
            },
        }
    except (KeyError, TypeError, ValueError, AttributeError):
        tallies["ill_shaped"] += 1
        return None
    return doc["key"], payload


def _fresh_tallies() -> Dict[str, int]:
    return {"torn": 0, "wrong_version": 0, "ill_shaped": 0}


class Journal:
    """Append-only JSONL store of completed task payloads, keyed by config.

    Group commit: ``record`` buffers the serialized line and commits
    pending lines in one ``write+flush+fsync`` when ``flush_max_records``
    accumulate or ``flush_interval`` seconds pass; ``flush()`` commits
    explicitly (the scheduler calls it before surfacing results) and
    ``close()`` always flushes.  ``flush_max_records=1`` restores the
    old one-fsync-per-line behaviour (the benchmark baseline).
    """

    def __init__(
        self,
        path: str,
        flush_max_records: int = DEFAULT_FLUSH_MAX_RECORDS,
        flush_interval: float = DEFAULT_FLUSH_INTERVAL,
    ):
        if flush_max_records < 1:
            raise ValueError(
                f"flush_max_records must be >= 1, got {flush_max_records}"
            )
        self.path = str(path)
        self.flush_max_records = int(flush_max_records)
        self.flush_interval = float(flush_interval)
        parent = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(parent, exist_ok=True)
        #: entries recovered from a previous (possibly killed) session
        self.entries: Dict[str, Dict[str, Any]] = {}
        self._tallies = _fresh_tallies()
        self._load()
        self._fh = open(self.path, "a", encoding="utf-8")
        self._pending: List[str] = []
        self._last_flush = time.monotonic()
        self._lock = threading.Lock()

    # -- corruption telemetry -------------------------------------------------
    @property
    def torn_lines(self) -> int:
        """Lines that did not parse as JSON (torn batched writes)."""
        return self._tallies["torn"]

    @property
    def wrong_version_lines(self) -> int:
        """Well-formed lines from an incompatible journal version."""
        return self._tallies["wrong_version"]

    @property
    def ill_shaped_lines(self) -> int:
        """Parsed lines whose payload shape is unusable."""
        return self._tallies["ill_shaped"]

    @property
    def corrupt_lines(self) -> int:
        """All skipped lines (torn + wrong version + ill-shaped)."""
        return sum(self._tallies.values())

    def counts(self) -> Dict[str, int]:
        """Telemetry snapshot: entries, pending and corruption by kind."""
        with self._lock:
            return {
                "entries": len(self.entries),
                "pending": len(self._pending),
                **self._tallies,
            }

    # -- load -----------------------------------------------------------------
    def _load(self) -> None:
        try:
            fh = open(self.path, "r", encoding="utf-8")
        except OSError:
            return
        with fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                parsed = _decode_line(line, self._tallies)
                if parsed is None:
                    continue
                # Last write wins (duplicates are bit-identical anyway).
                self.entries[parsed[0]] = parsed[1]

    # -- lookup ---------------------------------------------------------------
    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """Payload for ``key`` from this or a previous session, or ``None``."""
        return self.entries.get(key)

    def __contains__(self, key: str) -> bool:
        return key in self.entries

    def __len__(self) -> int:
        return len(self.entries)

    def keys(self) -> Iterator[str]:
        return iter(self.entries)

    # -- append ---------------------------------------------------------------
    def record(self, key: str, payload: Dict[str, Any]) -> None:
        """Buffer one completed task's scalar payload for group commit.

        The record is immediately visible to ``get``/``in`` (the caller
        holds the result anyway); it becomes *durable* at the next group
        commit — which this call triggers itself once the pending buffer
        hits ``flush_max_records`` or has aged past ``flush_interval``.
        """
        line = _encode_line(key, payload)
        with self._lock:
            self._pending.append(line)
            self.entries[key] = {
                "elapsed_s": payload["elapsed_s"],
                "phases": dict(payload["phases"]),
                "comm_stats": dict(payload["comm_stats"]),
            }
            if (
                len(self._pending) >= self.flush_max_records
                or time.monotonic() - self._last_flush >= self.flush_interval
            ):
                self._flush_locked()

    def flush(self) -> None:
        """Commit every pending record durably (one write + one fsync)."""
        with self._lock:
            self._flush_locked()

    def _flush_locked(self) -> None:
        self._last_flush = time.monotonic()
        if not self._pending or self._fh.closed:
            return
        blob = "".join(self._pending)
        self._pending = []
        self._fh.write(blob)
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        with self._lock:
            if not self._fh.closed:
                self._flush_locked()
                self._fh.close()

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class _Shard:
    """One prefix's journal file: entries, pending lines, lazy handle."""

    __slots__ = ("path", "entries", "pending", "tallies", "fh", "disk_size")

    def __init__(self, path: str):
        self.path = path
        self.entries: Dict[str, Dict[str, Any]] = {}
        #: (key, line) pairs buffered since the last commit
        self.pending: List[Tuple[str, str]] = []
        self.tallies = _fresh_tallies()
        self.fh = None
        #: bytes of the file consumed by the last (re)load
        self.disk_size = 0

    def load(self) -> None:
        """(Re)read the whole shard file; overlay pending records.

        A full re-read keeps ``refresh`` correct under concurrent
        appenders: byte-offset tail reads could start mid-line when a
        peer's write interleaves with ours.  Shard files are small by
        construction (1/256th of the journal), so this stays cheap.
        """
        entries: Dict[str, Dict[str, Any]] = {}
        tallies = _fresh_tallies()
        size = 0
        try:
            with open(self.path, "r", encoding="utf-8") as fh:
                for line in fh:
                    size += len(line.encode("utf-8"))
                    line = line.strip()
                    if not line:
                        continue
                    parsed = _decode_line(line, tallies)
                    if parsed is not None:
                        entries[parsed[0]] = parsed[1]
        except OSError:
            pass
        # Records buffered locally but not yet committed stay visible.
        for key, line in self.pending:
            parsed = _decode_line(line, _fresh_tallies())
            if parsed is not None:
                entries[key] = parsed[1]
        self.entries = entries
        self.tallies = tallies
        self.disk_size = size


class ShardedJournal:
    """A journal spread over 256 per-key-prefix JSONL files.

    Same line format and durability contract as :class:`Journal` (group
    commit per shard; ``flush`` commits every dirty shard with one fsync
    each), plus ``refresh()`` to pick up entries committed by concurrent
    scheduler processes writing *other* shards.  Keys must be hex cache
    keys (:func:`repro.cache.config_key` digests).
    """

    def __init__(
        self,
        root: str,
        flush_max_records: int = DEFAULT_FLUSH_MAX_RECORDS,
        flush_interval: float = DEFAULT_FLUSH_INTERVAL,
    ):
        if flush_max_records < 1:
            raise ValueError(
                f"flush_max_records must be >= 1, got {flush_max_records}"
            )
        self.root = str(root)
        self.flush_max_records = int(flush_max_records)
        self.flush_interval = float(flush_interval)
        os.makedirs(self.root, exist_ok=True)
        self._shards: Dict[str, _Shard] = {}
        self._last_flush = time.monotonic()
        self._lock = threading.RLock()
        self._closed = False

    # -- shard plumbing -------------------------------------------------------
    @staticmethod
    def _prefix(key: str) -> str:
        from repro.cache import SHARD_PREFIX_CHARS

        prefix = str(key)[:SHARD_PREFIX_CHARS].lower()
        if not prefix or not all(c in "0123456789abcdef" for c in prefix):
            raise ValueError(
                f"sharded journal keys must be hex digests, got {key!r}"
            )
        return prefix

    def _shard(self, prefix: str) -> _Shard:
        shard = self._shards.get(prefix)
        if shard is None:
            shard = _Shard(os.path.join(self.root, f"{prefix}.jsonl"))
            shard.load()
            self._shards[prefix] = shard
        return shard

    def _on_disk_prefixes(self) -> List[str]:
        try:
            names = os.listdir(self.root)
        except OSError:
            return []
        return sorted(
            name[:-6] for name in names if name.endswith(".jsonl")
        )

    def _load_all(self) -> None:
        for prefix in self._on_disk_prefixes():
            self._shard(prefix)

    # -- lookup ---------------------------------------------------------------
    def get(self, key: str) -> Optional[Dict[str, Any]]:
        with self._lock:
            return self._shard(self._prefix(key)).entries.get(key)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._shard(self._prefix(key)).entries

    def __len__(self) -> int:
        with self._lock:
            self._load_all()
            return sum(len(s.entries) for s in self._shards.values())

    def keys(self) -> Iterator[str]:
        with self._lock:
            self._load_all()
            out: List[str] = []
            for shard in self._shards.values():
                out.extend(shard.entries)
        return iter(out)

    def refresh(self) -> None:
        """Re-read shards whose files grew — a peer's committed progress.

        Unloaded on-disk shards are loaded; loaded shards are re-read
        only when their file size moved past what the last load consumed.
        Locally buffered (pending) records survive the re-read.
        """
        with self._lock:
            for prefix in self._on_disk_prefixes():
                shard = self._shards.get(prefix)
                if shard is None:
                    self._shard(prefix)
                    continue
                try:
                    size = os.path.getsize(shard.path)
                except OSError:
                    continue
                if size != shard.disk_size:
                    shard.load()

    # -- corruption telemetry -------------------------------------------------
    def _tally(self, kind: str) -> int:
        with self._lock:
            return sum(s.tallies[kind] for s in self._shards.values())

    @property
    def torn_lines(self) -> int:
        return self._tally("torn")

    @property
    def wrong_version_lines(self) -> int:
        return self._tally("wrong_version")

    @property
    def ill_shaped_lines(self) -> int:
        return self._tally("ill_shaped")

    @property
    def corrupt_lines(self) -> int:
        with self._lock:
            return sum(sum(s.tallies.values()) for s in self._shards.values())

    def counts(self) -> Dict[str, int]:
        with self._lock:
            out = {"entries": 0, "pending": 0, **_fresh_tallies()}
            for shard in self._shards.values():
                out["entries"] += len(shard.entries)
                out["pending"] += len(shard.pending)
                for k, v in shard.tallies.items():
                    out[k] += v
            return out

    # -- append ---------------------------------------------------------------
    def record(self, key: str, payload: Dict[str, Any]) -> None:
        line = _encode_line(key, payload)
        with self._lock:
            shard = self._shard(self._prefix(key))
            shard.pending.append((key, line))
            shard.entries[key] = {
                "elapsed_s": payload["elapsed_s"],
                "phases": dict(payload["phases"]),
                "comm_stats": dict(payload["comm_stats"]),
            }
            if (
                len(shard.pending) >= self.flush_max_records
                or time.monotonic() - self._last_flush >= self.flush_interval
            ):
                self._flush_locked()

    def flush(self) -> None:
        with self._lock:
            self._flush_locked()

    def _flush_locked(self) -> None:
        self._last_flush = time.monotonic()
        for shard in self._shards.values():
            if not shard.pending:
                continue
            if shard.fh is None:
                shard.fh = open(shard.path, "a", encoding="utf-8")
            blob = "".join(line for _, line in shard.pending)
            shard.pending = []
            shard.fh.write(blob)
            shard.fh.flush()
            os.fsync(shard.fh.fileno())
            shard.disk_size += len(blob.encode("utf-8"))

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._flush_locked()
            self._closed = True
            for shard in self._shards.values():
                if shard.fh is not None and not shard.fh.closed:
                    shard.fh.close()

    def __enter__(self) -> "ShardedJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def open_journal(path, **kwargs):
    """Open the right journal flavour for ``path``.

    An existing regular file — or a fresh path with a ``.jsonl``/``.json``
    suffix — is the flat single-file :class:`Journal` (the original CLI
    contract); an existing directory, or any other fresh path, is a
    :class:`ShardedJournal` root.  Keyword arguments (the group-commit
    bounds) pass through either way.
    """
    p = str(path)
    if os.path.isdir(p):
        return ShardedJournal(p, **kwargs)
    if os.path.isfile(p) or p.endswith((".jsonl", ".json")):
        return Journal(p, **kwargs)
    return ShardedJournal(p, **kwargs)
