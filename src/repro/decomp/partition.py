"""Task grids and subdomains (paper §IV-B).

The paper's data-distribution rules, implemented exactly:

* every task gets a subdomain "as close to the same size as possible and as
  close to cubic as possible, with the constraint that no task gets an
  empty domain";
* "the subdomain size is largest in the x dimension and smallest in the z
  dimension, to best enable memory locality" — i.e. the task grid has the
  fewest cuts in x and the most in z;
* "the largest subdomain is at most one grid point larger in each dimension
  than the smallest";
* subdomains are aligned, so each task has 26 logical neighbors (a task may
  be its own neighbor for small or prime task counts).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Iterator, Sequence, Tuple

__all__ = ["choose_task_grid", "block_range", "Subdomain", "Decomposition"]


def _factor_triples(n: int) -> Iterator[Tuple[int, int, int]]:
    """All ordered triples ``(p1 <= p2 <= p3)`` with ``p1*p2*p3 == n``."""
    p1 = 1
    while p1 * p1 * p1 <= n:
        if n % p1 == 0:
            m = n // p1
            p2 = p1
            while p2 * p2 <= m:
                if m % p2 == 0:
                    yield (p1, p2, m // p2)
                p2 += 1
        p1 += 1


@lru_cache(maxsize=4096)
def choose_task_grid(
    ntasks: int, domain: Tuple[int, int, int] = (420, 420, 420)
) -> Tuple[int, int, int]:
    """Pick the task grid ``(px, py, pz)`` for ``ntasks`` MPI tasks.

    Chooses the factor triple whose subdomains are closest to cubic
    (minimizing surface area at fixed volume, the natural "as close to cubic
    as possible" metric), subject to no dimension being cut below one point.
    The smallest factor goes to x and the largest to z, making subdomains
    largest in x and smallest in z as the paper prescribes.
    """
    if ntasks < 1:
        raise ValueError("ntasks must be >= 1")
    nx, ny, nz = domain
    if ntasks > nx * ny * nz:
        raise ValueError(f"{ntasks} tasks cannot all get non-empty subdomains of {domain}")
    best = None
    best_score = None
    for p1, p2, p3 in _factor_triples(ntasks):
        if p1 > nx or p2 > ny or p3 > nz:
            continue  # would create an empty subdomain
        sx, sy, sz = nx / p1, ny / p2, nz / p3
        # Surface-to-volume of the typical subdomain: lower is more cubic.
        score = (sx * sy + sy * sz + sx * sz) / (sx * sy * sz) ** (2.0 / 3.0)
        if best_score is None or score < best_score - 1e-12:
            best, best_score = (p1, p2, p3), score
    if best is None:
        raise ValueError(f"no valid task grid for {ntasks} tasks on domain {domain}")
    return best


def block_range(n: int, p: int, i: int) -> Tuple[int, int]:
    """Start offset and size of block ``i`` when ``n`` points split ``p`` ways.

    The first ``n % p`` blocks get one extra point, so sizes differ by at
    most one (the paper's imbalance guarantee).
    """
    if not 0 <= i < p:
        raise ValueError(f"block index {i} out of range for {p} blocks")
    if p > n:
        raise ValueError(f"cannot split {n} points into {p} non-empty blocks")
    base, extra = divmod(n, p)
    size = base + (1 if i < extra else 0)
    start = i * base + min(i, extra)
    return start, size


@dataclass(frozen=True)
class Subdomain:
    """One task's block of the global domain."""

    rank: int
    coords: Tuple[int, int, int]  # (tx, ty, tz) in the task grid
    offset: Tuple[int, int, int]  # global offset of the first interior point
    shape: Tuple[int, int, int]  # interior points per dimension

    @property
    def points(self) -> int:
        """Interior point count."""
        sx, sy, sz = self.shape
        return sx * sy * sz

    def face_points(self, dim: int) -> int:
        """Points on one face perpendicular to ``dim`` (without halo rims)."""
        s = list(self.shape)
        del s[dim]
        return s[0] * s[1]


class Decomposition:
    """The full task-grid decomposition of a periodic global domain.

    Rank order is x-fastest (``rank = tx + px*(ty + py*tz)``), matching the
    usual Cartesian layout in which consecutive ranks — which job launchers
    place on the same node — are x neighbors.
    """

    def __init__(self, ntasks: int, domain: Sequence[int] = (420, 420, 420)):
        self.domain = tuple(int(v) for v in domain)
        self.ntasks = int(ntasks)
        self.task_grid = choose_task_grid(self.ntasks, self.domain)

    def coords_of(self, rank: int) -> Tuple[int, int, int]:
        """Task-grid coordinates of ``rank``."""
        px, py, _ = self.task_grid
        return (rank % px, (rank // px) % py, rank // (px * py))

    def rank_of(self, coords: Sequence[int]) -> int:
        """Rank at task-grid ``coords`` (periodic wraparound applied)."""
        px, py, pz = self.task_grid
        tx, ty, tz = (int(c) % p for c, p in zip(coords, (px, py, pz)))
        return tx + px * (ty + py * tz)

    def subdomain(self, rank: int) -> Subdomain:
        """The :class:`Subdomain` owned by ``rank``."""
        if not 0 <= rank < self.ntasks:
            raise ValueError(f"rank {rank} out of range for {self.ntasks} tasks")
        coords = self.coords_of(rank)
        offs, sizes = [], []
        for d in range(3):
            start, size = block_range(self.domain[d], self.task_grid[d], coords[d])
            offs.append(start)
            sizes.append(size)
        return Subdomain(rank=rank, coords=coords, offset=tuple(offs), shape=tuple(sizes))

    def neighbor(self, rank: int, dim: int, side: int) -> int:
        """Rank of the face neighbor of ``rank`` along ``dim`` (side ±1)."""
        if side not in (-1, 1):
            raise ValueError("side must be -1 or +1")
        coords = list(self.coords_of(rank))
        coords[dim] += side
        return self.rank_of(coords)

    def face_neighbors(self, rank: int) -> Dict[Tuple[int, int], int]:
        """All six face neighbors, keyed by ``(dim, side)``."""
        return {
            (d, s): self.neighbor(rank, d, s) for d in range(3) for s in (-1, 1)
        }

    def all_neighbors(self, rank: int) -> set[int]:
        """The 26 logical neighbor ranks (may include ``rank`` itself)."""
        out = set()
        tx, ty, tz = self.coords_of(rank)
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                for dz in (-1, 0, 1):
                    if dx == dy == dz == 0:
                        continue
                    out.add(self.rank_of((tx + dx, ty + dy, tz + dz)))
        return out

    def max_subdomain_shape(self) -> Tuple[int, int, int]:
        """Shape of the largest subdomain (the strong-scaling critical rank)."""
        return tuple(
            block_range(self.domain[d], self.task_grid[d], 0)[1] for d in range(3)
        )

    def min_subdomain_shape(self) -> Tuple[int, int, int]:
        """Shape of the smallest subdomain."""
        return tuple(
            block_range(self.domain[d], self.task_grid[d], self.task_grid[d] - 1)[1]
            for d in range(3)
        )

    def node_of(self, rank: int, tasks_per_node: int) -> int:
        """Node index hosting ``rank`` under contiguous block placement."""
        if tasks_per_node < 1:
            raise ValueError("tasks_per_node must be >= 1")
        return rank // tasks_per_node

    def offnode_dims(self, rank: int, tasks_per_node: int) -> Dict[int, Tuple[bool, bool]]:
        """For each dim, whether the (-,+) face neighbors live on another node.

        Used by the network models: on-node halo messages move at memory
        speed, off-node ones cross the NIC.
        """
        me = self.node_of(rank, tasks_per_node)
        out = {}
        for d in range(3):
            out[d] = tuple(
                self.node_of(self.neighbor(rank, d, s), tasks_per_node) != me
                for s in (-1, 1)
            )
        return out
