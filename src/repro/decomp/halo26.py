"""Direct 26-neighbor halo exchange regions (extension).

The paper's protocol serializes dimensions to route corner data through
faces (6 messages). The classic alternative sends to all 26 logical
neighbors directly — 6 faces + 12 edges + 8 corners — with no serialization
but 26 latencies and per-message overheads. This module provides the
region geometry and pack/unpack for that protocol; the
``bulk_direct`` implementation and the ``protocols`` experiment compare
the two (see DESIGN.md §7).

Offsets ``d`` are vectors in {-1, 0, +1}^3 minus the origin. For offset
``d`` a rank *sends* its boundary region toward ``d`` (the points the
``d``-neighbor needs as halo) and *receives* its halo region at ``d`` from
that same neighbor. Regions exclude halo rims entirely — corners travel in
their own messages.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

__all__ = [
    "OFFSETS26",
    "offset_tag",
    "region_points",
    "region_bytes",
    "pack_region",
    "unpack_region",
    "total_exchange_bytes",
]

#: The 26 neighbor offsets, deterministic order (faces, then edges, corners).
OFFSETS26: Tuple[Tuple[int, int, int], ...] = tuple(
    sorted(
        (
            (dx, dy, dz)
            for dx in (-1, 0, 1)
            for dy in (-1, 0, 1)
            for dz in (-1, 0, 1)
            if (dx, dy, dz) != (0, 0, 0)
        ),
        key=lambda d: (sum(map(abs, d)), d),
    )
)

#: Tag space distinct from the serialized protocol's 6 halo tags.
_TAG_BASE = 100


def offset_tag(d: Sequence[int]) -> int:
    """Unique tag for offset ``d``."""
    return _TAG_BASE + (d[0] + 1) * 9 + (d[1] + 1) * 3 + (d[2] + 1)


def _send_slices(shape: Sequence[int], d: Sequence[int]) -> Tuple[slice, ...]:
    """Haloed-array slices of the boundary region sent toward ``d``."""
    out = []
    for n, dd in zip(shape, d):
        if dd == -1:
            out.append(slice(1, 2))
        elif dd == 1:
            out.append(slice(n, n + 1))
        else:
            out.append(slice(1, n + 1))
    return tuple(out)


def _recv_slices(shape: Sequence[int], d: Sequence[int]) -> Tuple[slice, ...]:
    """Haloed-array slices of the halo region at offset ``d``."""
    out = []
    for n, dd in zip(shape, d):
        if dd == -1:
            out.append(slice(0, 1))
        elif dd == 1:
            out.append(slice(n + 1, n + 2))
        else:
            out.append(slice(1, n + 1))
    return tuple(out)


def region_points(shape: Sequence[int], d: Sequence[int]) -> int:
    """Points in the region exchanged for offset ``d``."""
    pts = 1
    for n, dd in zip(shape, d):
        pts *= 1 if dd else int(n)
    return pts


def region_bytes(shape: Sequence[int], d: Sequence[int], itemsize: int = 8) -> int:
    """Bytes of one direct-exchange message."""
    return region_points(shape, d) * itemsize


def total_exchange_bytes(shape: Sequence[int], itemsize: int = 8) -> int:
    """Bytes a rank sends per step under the direct protocol."""
    return sum(region_bytes(shape, d, itemsize) for d in OFFSETS26)


def pack_region(field: np.ndarray, d: Sequence[int]) -> np.ndarray:
    """Contiguous copy of the boundary region sent toward ``d``."""
    shape = tuple(s - 2 for s in field.shape)
    return np.ascontiguousarray(field[_send_slices(shape, d)])


def unpack_region(field: np.ndarray, d: Sequence[int], buf: np.ndarray) -> None:
    """Store a received region into the halo at offset ``d``."""
    shape = tuple(s - 2 for s in field.shape)
    target = field[_recv_slices(shape, d)]
    if buf.shape != target.shape:
        raise ValueError(f"region buffer {buf.shape} != halo region {target.shape}")
    target[...] = buf
