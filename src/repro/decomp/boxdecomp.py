"""CPU-box / GPU-block decomposition of a task's subdomain (Fig. 1).

The hybrid implementations (§IV-H, §IV-I) split each task-local subdomain
between the GPU, which gets an interior *block*, and the CPUs, which get the
enclosing *box* — a shell of tunable thickness. The thickness is the CPU/GPU
load-balance knob, and the paper's key result is that a *thin* box wins
because the CPU shell decouples MPI communication from CPU-GPU (PCIe)
communication.

Coordinates here are interior coordinates of the task subdomain (0-based,
halo excluded). The shell is decomposed into six non-overlapping wall slabs,
two per dimension, so the full-overlap implementation can interleave wall
computation with the same dimension's MPI exchange:

* ±x walls: full y/z extent;
* ±y walls: x restricted to the block's x range;
* ±z walls: x and y restricted to the block's ranges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

__all__ = ["Wall", "BoxDecomposition"]

Coords = Tuple[int, int, int]


@dataclass(frozen=True)
class Wall:
    """One rectangular slab of the CPU box shell."""

    dim: int
    side: int  # -1 or +1
    lo: Coords
    hi: Coords  # exclusive

    @property
    def points(self) -> int:
        """Number of grid points in the slab."""
        return max(0, (self.hi[0] - self.lo[0])) * max(0, (self.hi[1] - self.lo[1])) * max(
            0, (self.hi[2] - self.lo[2])
        )


class BoxDecomposition:
    """Split an ``(nx, ny, nz)`` subdomain into GPU block + CPU box walls.

    Parameters
    ----------
    shape:
        Interior shape of the task subdomain.
    thickness:
        Wall thickness ``T >= 1`` in points; identical on all six sides
        (the paper's single "box thickness" tuning parameter).
    """

    def __init__(self, shape: Sequence[int], thickness: int):
        self.shape: Coords = tuple(int(v) for v in shape)
        self.thickness = int(thickness)
        nx, ny, nz = self.shape
        t = self.thickness
        if t < 1:
            raise ValueError("box thickness must be >= 1")
        if min(nx, ny, nz) <= 2 * t:
            raise ValueError(
                f"thickness {t} leaves no GPU block in subdomain {self.shape}"
            )
        self.block_lo: Coords = (t, t, t)
        self.block_hi: Coords = (nx - t, ny - t, nz - t)

    # -- point counts --------------------------------------------------------
    @property
    def total_points(self) -> int:
        """All interior points of the subdomain."""
        nx, ny, nz = self.shape
        return nx * ny * nz

    @property
    def gpu_points(self) -> int:
        """Points computed by the GPU block."""
        return (
            (self.block_hi[0] - self.block_lo[0])
            * (self.block_hi[1] - self.block_lo[1])
            * (self.block_hi[2] - self.block_lo[2])
        )

    @property
    def cpu_points(self) -> int:
        """Points computed by the CPU box (shell)."""
        return self.total_points - self.gpu_points

    @property
    def cpu_fraction(self) -> float:
        """Fraction of the subdomain's work assigned to the CPUs."""
        return self.cpu_points / self.total_points

    @property
    def block_shape(self) -> Coords:
        """Shape of the GPU block."""
        return tuple(h - l for l, h in zip(self.block_lo, self.block_hi))

    # -- wall slabs -----------------------------------------------------------
    def walls(self) -> List[Wall]:
        """The six non-overlapping CPU wall slabs, ordered x, y, z."""
        nx, ny, nz = self.shape
        t = self.thickness
        bx0, by0, bz0 = self.block_lo
        bx1, by1, bz1 = self.block_hi
        return [
            Wall(0, -1, (0, 0, 0), (t, ny, nz)),
            Wall(0, +1, (nx - t, 0, 0), (nx, ny, nz)),
            Wall(1, -1, (bx0, 0, 0), (bx1, t, nz)),
            Wall(1, +1, (bx0, ny - t, 0), (bx1, ny, nz)),
            Wall(2, -1, (bx0, by0, 0), (bx1, by1, t)),
            Wall(2, +1, (bx0, by0, nz - t), (bx1, by1, nz)),
        ]

    def walls_for_dim(self, dim: int) -> List[Wall]:
        """The two walls whose exchange dimension is ``dim``."""
        return [w for w in self.walls() if w.dim == dim]

    # -- CPU-GPU exchange surfaces ---------------------------------------------
    @property
    def inner_halo_points(self) -> int:
        """CPU points the GPU needs as halo: one layer just outside the block."""
        return self._shell_layer_points(self.block_lo, self.block_hi, outward=True)

    @property
    def inner_boundary_points(self) -> int:
        """GPU points the CPU needs as halo: the block's outermost layer."""
        return self._shell_layer_points(self.block_lo, self.block_hi, outward=False)

    @staticmethod
    def _shell_layer_points(lo: Coords, hi: Coords, outward: bool) -> int:
        bx, by, bz = (h - l for l, h in zip(lo, hi))
        if outward:
            # Box one point larger on every side, minus the block itself.
            return (bx + 2) * (by + 2) * (bz + 2) - bx * by * bz
        # Block minus the block shrunk by one point per side.
        inner = max(0, bx - 2) * max(0, by - 2) * max(0, bz - 2)
        return bx * by * bz - inner

    def inner_exchange_bytes(self, itemsize: int = 8) -> Tuple[int, int]:
        """(host→device, device→host) bytes per step for the inner exchange."""
        return (
            self.inner_halo_points * itemsize,
            self.inner_boundary_points * itemsize,
        )

    # -- CPU wall interior/outer-boundary split (for §IV-I) -------------------
    def wall_interior_box(self, wall: Wall) -> Tuple[Coords, Coords]:
        """``wall`` clipped away from the subdomain's outer surface.

        These are the wall points computable while MPI for the wall's
        dimension is still in flight (they read no outer halo).
        """
        nx, ny, nz = self.shape
        lo = tuple(max(l, 1) for l in wall.lo)
        hi = tuple(min(h, n - 1) for h, n in zip(wall.hi, (nx, ny, nz)))
        return lo, hi

    def wall_interior_points_for(self, wall: Wall) -> int:
        """Point count of :meth:`wall_interior_box`."""
        lo, hi = self.wall_interior_box(wall)
        return max(0, hi[0] - lo[0]) * max(0, hi[1] - lo[1]) * max(0, hi[2] - lo[2])

    def wall_outer_boundary_points(self) -> int:
        """CPU points touching the *task's* outer halo (computed after MPI)."""
        nx, ny, nz = self.shape
        inner = max(0, nx - 2) * max(0, ny - 2) * max(0, nz - 2)
        return nx * ny * nz - inner

    def wall_interior_points(self) -> int:
        """CPU shell points not on the outer surface (computable during MPI)."""
        return self.cpu_points - min(self.cpu_points, self.wall_outer_boundary_points())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"BoxDecomposition(shape={self.shape}, T={self.thickness}, "
            f"gpu={self.gpu_points}, cpu={self.cpu_points})"
        )
