"""Domain decomposition (paper §IV-B, §IV-H, Fig. 1).

* :mod:`~repro.decomp.partition` — the paper's data-distribution algorithm:
  subdomains as equal-sized and as cubic as possible, no empty subdomains,
  largest extent in x / smallest in z, at most one point of imbalance per
  dimension; rank/coordinate maps and the 6 face neighbors.
* :mod:`~repro.decomp.halo` — the serialized 6-exchange halo protocol that
  routes the 26 logical neighbors through 6 messages (x corners travel via
  y neighbors; x and y via z), with functional pack/unpack and byte counts.
* :mod:`~repro.decomp.boxdecomp` — the CPU-box / GPU-block split of Fig. 1
  with tunable wall thickness, wall slabs per dimension, and the inner
  halo/boundary exchange surfaces between CPU and GPU.
"""

from repro.decomp.boxdecomp import BoxDecomposition, Wall
from repro.decomp.halo import (
    HaloExchangePlan,
    face_message_bytes,
    pack_face,
    unpack_face,
)
from repro.decomp.partition import (
    Decomposition,
    Subdomain,
    block_range,
    choose_task_grid,
)

__all__ = [
    "BoxDecomposition",
    "Decomposition",
    "HaloExchangePlan",
    "Subdomain",
    "Wall",
    "block_range",
    "choose_task_grid",
    "face_message_bytes",
    "pack_face",
    "unpack_face",
]
