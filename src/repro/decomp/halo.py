"""Serialized 6-exchange halo protocol (paper §IV-B).

Each task exchanges with its 26 logical neighbors using only 6 messages by
serializing the dimensions: x faces first, then y faces (whose planes now
carry the freshly filled x halos, delivering x-y corner data), then z faces
(carrying x and y halos). This is the paper's "well-established strategy
[that] reduces the number of neighbor exchanges from 26 to 6".

The face planes are packed *with* the halo rims of the other dimensions:
when exchanging dimension ``d``, the plane spans the full haloed extent of
every other dimension. Rim entries that have not been filled yet are
harmless garbage that later exchanges overwrite; rim entries filled by
earlier exchanges are exactly the corner values that must propagate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

__all__ = ["pack_face", "unpack_face", "face_message_bytes", "HaloExchangePlan"]

#: Exchange order; must be ascending for corner propagation to work.
EXCHANGE_ORDER: Tuple[int, int, int] = (0, 1, 2)


def _boundary_plane_index(field: np.ndarray, dim: int, side: int) -> int:
    """Index along ``dim`` of the interior boundary plane on ``side``."""
    return 1 if side == -1 else field.shape[dim] - 2


def _halo_plane_index(field: np.ndarray, dim: int, side: int) -> int:
    """Index along ``dim`` of the halo plane on ``side``."""
    return 0 if side == -1 else field.shape[dim] - 1


def pack_face(field: np.ndarray, dim: int, side: int) -> np.ndarray:
    """Copy the boundary plane to be sent to the ``(dim, side)`` neighbor.

    Returns a contiguous 2-D array spanning the full haloed extent of the
    other two dimensions.
    """
    if side not in (-1, 1):
        raise ValueError("side must be -1 or +1")
    idx: list = [slice(None)] * 3
    idx[dim] = _boundary_plane_index(field, dim, side)
    return np.ascontiguousarray(field[tuple(idx)])


def unpack_face(field: np.ndarray, dim: int, side: int, buf: np.ndarray) -> None:
    """Store a received plane into the halo on ``side`` of ``dim``."""
    if side not in (-1, 1):
        raise ValueError("side must be -1 or +1")
    idx: list = [slice(None)] * 3
    idx[dim] = _halo_plane_index(field, dim, side)
    target = field[tuple(idx)]
    if buf.shape != target.shape:
        raise ValueError(f"face buffer shape {buf.shape} != halo plane {target.shape}")
    target[...] = buf


def face_message_bytes(shape: Sequence[int], dim: int, itemsize: int = 8) -> int:
    """Bytes in one face message for an interior ``shape`` subdomain.

    Planes include the halo rims of the other dimensions (extent + 2).
    """
    full = [int(s) + 2 for s in shape]
    del full[dim]
    return full[0] * full[1] * itemsize


@dataclass(frozen=True)
class HaloExchangePlan:
    """Precomputed message sizes for a subdomain's serialized exchange."""

    shape: Tuple[int, int, int]
    itemsize: int = 8

    def message_bytes(self, dim: int) -> int:
        """Bytes per face message in dimension ``dim`` (one direction)."""
        return face_message_bytes(self.shape, dim, self.itemsize)

    @property
    def total_bytes(self) -> int:
        """Total bytes sent per task per step (6 messages)."""
        return 2 * sum(self.message_bytes(d) for d in range(3))

    def pack_points(self, dim: int) -> int:
        """Points copied when packing/unpacking one face in ``dim``."""
        return self.message_bytes(dim) // self.itemsize
