"""Trace exporters: Chrome-trace/Perfetto JSON and the ASCII timeline.

The Chrome trace format (the JSON array / object flavour read by
``chrome://tracing`` and https://ui.perfetto.dev) maps naturally onto the
tracer's structure:

* a trace **group** (MPI rank, GPU device, shared link) becomes a
  *process* (``pid``), named via ``process_name`` metadata;
* a **resource lane** within a group becomes a *thread* (``tid``), named
  via ``thread_name`` metadata;
* intervals become complete events (``"ph": "X"``) with microsecond
  ``ts``/``dur``; instantaneous marks become instant events
  (``"ph": "i"``); counters become ``"ph": "C"`` events.

``write_chrome_trace`` emits the object form (``{"traceEvents": [...]}``)
so run-level metadata (config, metrics) rides along in ``"metadata"``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.obs.tracer import GPU_GROUP_BASE, LINK_GROUP_BASE, Tracer

__all__ = ["chrome_trace", "write_chrome_trace", "ascii_timeline"]

_S_TO_US = 1e6


def _group_name(tracer: Tracer, group: int) -> str:
    name = tracer.group_names.get(group)
    if name:
        return name
    if group < GPU_GROUP_BASE:
        return f"rank {group}"
    if group < LINK_GROUP_BASE:
        return f"gpu{group - GPU_GROUP_BASE}"
    return f"link{group - LINK_GROUP_BASE}"


def chrome_trace(
    tracer: Tracer, metadata: Optional[Dict[str, Any]] = None
) -> Dict[str, Any]:
    """Render a tracer as a Chrome-trace/Perfetto JSON document (a dict)."""
    events: List[Dict[str, Any]] = []
    # Stable tid assignment: lane order within each group.
    tids: Dict[tuple, int] = {}
    next_tid: Dict[int, int] = {}
    for group, lane in tracer.lane_keys():
        tid = next_tid.get(group, 0)
        next_tid[group] = tid + 1
        tids[(group, lane)] = tid
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": group,
                "tid": tid,
                "args": {"name": lane},
            }
        )
    for group in sorted(next_tid):
        events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": group,
                "tid": 0,
                "args": {"name": _group_name(tracer, group)},
            }
        )
    for ev in tracer.events:
        tid = tids[(ev.group, ev.lane)]
        entry: Dict[str, Any] = {
            "name": ev.name,
            "cat": ev.cat or ev.lane,
            "pid": ev.group,
            "tid": tid,
            "ts": ev.start * _S_TO_US,
        }
        if ev.end > ev.start:
            entry["ph"] = "X"
            entry["dur"] = (ev.end - ev.start) * _S_TO_US
        else:
            entry["ph"] = "i"
            entry["s"] = "t"  # thread-scoped instant
        if ev.args:
            entry["args"] = dict(ev.args)
        events.append(entry)
    for c in tracer.counters:
        events.append(
            {
                "ph": "C",
                "name": c.name,
                "pid": c.group,
                "tid": 0,
                "ts": c.time * _S_TO_US,
                "args": {"value": c.value},
            }
        )
    doc: Dict[str, Any] = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
    }
    meta = dict(tracer.meta)
    if metadata:
        meta.update(metadata)
    if meta:
        doc["metadata"] = _jsonable(meta)
    return doc


def _jsonable(obj: Any) -> Any:
    """Best-effort conversion to JSON-serializable primitives."""
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    return repr(obj)


def write_chrome_trace(
    tracer: Tracer, path: str, metadata: Optional[Dict[str, Any]] = None
) -> None:
    """Write the Chrome-trace JSON for ``tracer`` to ``path``.

    Load the file at https://ui.perfetto.dev (or ``chrome://tracing``) to
    see the lanes as per-rank/per-device timelines.
    """
    with open(path, "w") as fh:
        json.dump(chrome_trace(tracer, metadata), fh)
        fh.write("\n")


def ascii_timeline(tracer: Tracer, width: int = 100, window=None) -> str:
    """The ASCII Gantt view (delegates to :meth:`Tracer.timeline_text`)."""
    return tracer.timeline_text(width=width, window=window)
