"""Observability: structured tracing, exporters, overlap metrics, invariants.

The paper's subject is *which activities actually overlap*; this package
turns that from prose into data. See docs/MODEL.md §9 for the trace
schema, the metric definitions, and how the invariants map onto the
paper's figures.

* :mod:`repro.obs.tracer` — the structured :class:`Tracer` (lanes keyed by
  ``(group, resource)``, counters, marks);
* :mod:`repro.obs.export` — Chrome-trace/Perfetto JSON and ASCII views;
* :mod:`repro.obs.metrics` — occupancy, overlap matrix, overlap fraction,
  critical-path decomposition (attached to ``RunResult.overlap``);
* :mod:`repro.obs.invariants` — the trace-invariant checker;
* :mod:`repro.obs.capture` — process-global capture for checking whole
  experiment sweeps.
"""

from repro.obs.capture import active_capture, capture_traces
from repro.obs.export import ascii_timeline, chrome_trace, write_chrome_trace
from repro.obs.invariants import TraceInvariantError, assert_invariants, check_trace
from repro.obs.metrics import (
    OverlapMetrics,
    compute_metrics,
    critical_path,
    lane_occupancy,
    overlap_fraction,
    overlap_matrix,
)
from repro.obs.tracer import (
    GPU_GROUP_BASE,
    LINK_GROUP_BASE,
    CounterSample,
    TraceEvent,
    Tracer,
)

__all__ = [
    "GPU_GROUP_BASE",
    "LINK_GROUP_BASE",
    "CounterSample",
    "OverlapMetrics",
    "TraceEvent",
    "TraceInvariantError",
    "Tracer",
    "active_capture",
    "ascii_timeline",
    "assert_invariants",
    "capture_traces",
    "check_trace",
    "chrome_trace",
    "compute_metrics",
    "critical_path",
    "lane_occupancy",
    "overlap_fraction",
    "overlap_matrix",
    "write_chrome_trace",
]
