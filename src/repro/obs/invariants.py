"""Trace-invariant checker: physical consistency, machine-checked.

A timeline from the simulator must obey the physics of the machine it
models. The checker asserts, from the trace alone:

1. **well-formed events** — finite, non-negative intervals;
2. **no double-booking** — each rank's ``host`` lane is a single CPU
   timeline (max concurrency 1); GPU kernel/copy lanes respect the
   device's kernel slots and copy-engine counts; the blocking pageable
   PCIe path (``pcie`` lane) carries at most one transfer per device at a
   time, and the async copy engines carry at most one transfer **per
   direction** at a time (one engine each for H2D and D2H on devices with
   two engines);
3. **MPI matching** — every ``isend`` post has a matching ``irecv`` post
   (per ``(src, dst, tag)`` in the full-network backend, per tag in the
   mirror backend), with equal byte totals;
4. **span consistency** — the measured window ``[t0, t1]`` is covered by
   the trace (the run's barriers/syncs are themselves traced, so the span
   must reach exactly to the timing reads) and ``elapsed == t1 - t0``;
5. **non-degenerate** — something was busy inside the measured window;
6. **known lanes** — every event lands on a lane the checker understands:
   one of :data:`KNOWN_LANES` or a link's own wire lane (identified by a
   group id at/above ``LINK_GROUP_BASE``). Unknown lanes fail loudly —
   a rule nobody is checking is worse than no rule;
7. **progress model** — the ``progress`` lane (background wire work
   advanced by a progress thread or NIC offload engine) may only appear
   when ``meta["progress"]`` says the machine has one; under the
   paper-era ``manual-poll`` model the library attends every transfer,
   so autonomous progress in the trace is a modelling bug;
8. **NVLink** — ``nvlink`` peer-copy events may only come from GPU
   device groups whose capability record says the device hangs off an
   NVLink fabric, and each device's single outbound engine drives at
   most one peer copy at a time.

``check_trace`` returns a list of violation strings (empty = pass);
``assert_invariants`` raises :class:`TraceInvariantError` instead. The CI
job runs this over every run of ``experiment all --fast`` via
:mod:`repro.obs.capture`.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, List, Optional, Tuple

from repro.obs.tracer import GPU_GROUP_BASE, LINK_GROUP_BASE, TraceEvent, Tracer

__all__ = ["KNOWN_LANES", "TraceInvariantError", "check_trace", "assert_invariants"]

#: Relative slack on span-vs-window comparisons (float accumulation only;
#: the traced barriers end exactly at the timing reads).
_REL_EPS = 1e-9

#: Every lane the simulator emits on non-link groups. Link wire lanes are
#: named after the link ("nic0", "gpu0-pcie", "nvlink0", ...) and are
#: recognised by their group id (>= LINK_GROUP_BASE) instead.
KNOWN_LANES = frozenset(
    {
        "host",       # one CPU timeline per rank
        "gpu-kernel", # device kernels
        "gpu-copy",   # async copy engines (H2D/D2H, staged peer hops)
        "nvlink",     # GPU peer copies over the node's NVLink fabric
        "mpi",        # library-attended message wire time
        "progress",   # autonomously-progressed wire time (thread/offload)
        "mpi-sync",   # barriers / collectives
        "pcie",       # blocking pageable copies
        "noise",      # perturbation injections
    }
)


class TraceInvariantError(AssertionError):
    """A trace violated a physical-consistency invariant."""

    def __init__(self, violations: List[str]):
        self.violations = list(violations)
        super().__init__(
            f"{len(violations)} trace invariant violation(s):\n  "
            + "\n  ".join(violations)
        )


def _max_concurrency(intervals: List[Tuple[float, float]]) -> int:
    """Peak number of simultaneously open intervals (touching ≠ overlap)."""
    points: List[Tuple[float, int]] = []
    for s, e in intervals:
        if e > s:  # zero-length marks occupy nothing
            points.append((s, +1))
            points.append((e, -1))
    # Ends sort before starts at equal times, so back-to-back intervals
    # (end == next start, the normal case for a sequential rank) count 1.
    points.sort(key=lambda p: (p[0], p[1]))
    cur = peak = 0
    for _, delta in points:
        cur += delta
        peak = max(peak, cur)
    return peak


def _check_wellformed(tracer: Tracer, out: List[str]) -> None:
    for ev in tracer.events:
        if not (math.isfinite(ev.start) and math.isfinite(ev.end)):
            out.append(f"non-finite interval {ev}")
        elif ev.end < ev.start:
            out.append(f"interval ends before it starts: {ev}")
        elif ev.start < 0:
            out.append(f"interval starts before t=0: {ev}")


def _check_host_exclusive(tracer: Tracer, out: List[str]) -> None:
    by_rank: Dict[int, List[Tuple[float, float]]] = defaultdict(list)
    for ev in tracer.events:
        if ev.lane == "host" and ev.group < GPU_GROUP_BASE:
            by_rank[ev.group].append((ev.start, ev.end))
    for rank, ivals in sorted(by_rank.items()):
        peak = _max_concurrency(ivals)
        if peak > 1:
            out.append(
                f"rank {rank} host lane double-booked "
                f"({peak} concurrent intervals; a rank has one CPU timeline)"
            )


def _gpu_capacity(tracer: Tracer, group: int, key: str, default: int) -> int:
    caps = tracer.meta.get("gpus", {})
    return int(caps.get(group, caps.get(str(group), {})).get(key, default))


def _check_gpu_lanes(tracer: Tracer, out: List[str]) -> None:
    kernels: Dict[int, List[Tuple[float, float]]] = defaultdict(list)
    copies: Dict[Tuple[int, str], List[Tuple[float, float]]] = defaultdict(list)
    copies_all: Dict[int, List[Tuple[float, float]]] = defaultdict(list)
    sync_pcie: Dict[str, List[Tuple[float, float]]] = defaultdict(list)
    for ev in tracer.events:
        if ev.lane == "gpu-kernel":
            kernels[ev.group].append((ev.start, ev.end))
        elif ev.lane == "gpu-copy":
            direction = (ev.args or {}).get("dir") or (
                "h2d" if ev.name.startswith("h2d") else (
                    "d2h" if ev.name.startswith("d2h") else ev.name
                )
            )
            copies[(ev.group, direction)].append((ev.start, ev.end))
            copies_all[ev.group].append((ev.start, ev.end))
        elif ev.lane == "pcie":
            dev = (ev.args or {}).get("dev", str(ev.group))
            sync_pcie[dev].append((ev.start, ev.end))
    for group, ivals in sorted(kernels.items()):
        slots = _gpu_capacity(tracer, group, "kernel_slots", 16)
        peak = _max_concurrency(ivals)
        if peak > slots:
            out.append(
                f"gpu group {group}: {peak} concurrent kernels exceed the "
                f"device's {slots} kernel slot(s)"
            )
    for group, ivals in sorted(copies_all.items()):
        engines = _gpu_capacity(tracer, group, "copy_engines", 2)
        peak = _max_concurrency(ivals)
        if peak > engines:
            out.append(
                f"gpu group {group}: {peak} concurrent async copies exceed "
                f"{engines} copy engine(s)"
            )
    for (group, direction), ivals in sorted(copies.items()):
        peak = _max_concurrency(ivals)
        if peak > 1:
            out.append(
                f"gpu group {group}: {peak} concurrent {direction} transfers "
                f"(PCIe carries at most one per direction at a time)"
            )
    for dev, ivals in sorted(sync_pcie.items()):
        peak = _max_concurrency(ivals)
        if peak > 1:
            out.append(
                f"device {dev}: {peak} concurrent blocking pageable copies "
                f"(the driver serializes the synchronous path)"
            )


def _check_known_lanes(tracer: Tracer, out: List[str]) -> None:
    unknown: Dict[str, int] = defaultdict(int)
    for ev in tracer.events:
        if ev.lane not in KNOWN_LANES and ev.group < LINK_GROUP_BASE:
            unknown[ev.lane] += 1
    for lane, count in sorted(unknown.items()):
        out.append(
            f"unknown lane {lane!r} ({count} event(s)) on a non-link group: "
            f"no invariant covers it — register it in KNOWN_LANES with a rule"
        )


def _check_progress_model(tracer: Tracer, out: List[str]) -> None:
    model = tracer.meta.get("progress", "manual-poll")
    if model != "manual-poll":
        return
    n = sum(1 for ev in tracer.events if ev.lane == "progress")
    if n:
        out.append(
            f"{n} 'progress' lane event(s) under the manual-poll model "
            f"(wire work may only advance inside library calls)"
        )


def _check_nvlink(tracer: Tracer, out: List[str]) -> None:
    by_group: Dict[int, List[Tuple[float, float]]] = defaultdict(list)
    for ev in tracer.events:
        if ev.lane != "nvlink" or ev.group >= LINK_GROUP_BASE:
            continue  # link-group events are the fabric's own wire lane
        by_group[ev.group].append((ev.start, ev.end))
    for group, ivals in sorted(by_group.items()):
        if not GPU_GROUP_BASE <= group < LINK_GROUP_BASE:
            out.append(
                f"group {group}: 'nvlink' peer copies from a non-GPU group"
            )
            continue
        if not _gpu_capacity(tracer, group, "nvlink", 0):
            out.append(
                f"gpu group {group}: 'nvlink' peer copies on a device "
                f"without an NVLink fabric"
            )
        peak = _max_concurrency(ivals)
        if peak > 1:
            out.append(
                f"gpu group {group}: {peak} concurrent outbound peer copies "
                f"(one outbound engine drives NVLink transfers)"
            )


def _check_mpi_matching(tracer: Tracer, out: List[str]) -> None:
    sends: Dict[tuple, List[int]] = defaultdict(list)
    recvs: Dict[tuple, List[int]] = defaultdict(list)
    mirror = tracer.meta.get("network") == "mirror"
    for ev in tracer.events:
        if ev.lane != "mpi" or ev.name not in ("isend", "irecv"):
            continue
        a = ev.args or {}
        if mirror:
            key = (a.get("tag"),)
        else:
            key = (a.get("src"), a.get("dst"), a.get("tag"))
        (sends if ev.name == "isend" else recvs)[key].append(int(a.get("nbytes", 0)))
    for key in sorted(set(sends) | set(recvs), key=str):
        ns, nr = len(sends.get(key, [])), len(recvs.get(key, []))
        if ns != nr:
            out.append(
                f"MPI matching broken for {key}: {ns} send(s) vs {nr} recv(s)"
            )
        elif sum(sends.get(key, [])) != sum(recvs.get(key, [])):
            out.append(
                f"MPI byte mismatch for {key}: "
                f"{sum(sends[key])} sent vs {sum(recvs[key])} received"
            )


def _check_span(tracer: Tracer, out: List[str]) -> None:
    t0 = tracer.meta.get("t0")
    t1 = tracer.meta.get("t1")
    elapsed = tracer.meta.get("elapsed_s")
    if t0 is None or t1 is None:
        return  # synthetic trace without a measured window
    lo, hi = tracer.span()
    tol = _REL_EPS * max(abs(t0), abs(t1), 1e-12)
    if elapsed is not None and abs((t1 - t0) - elapsed) > tol:
        out.append(
            f"reported elapsed {elapsed!r} != t1 - t0 = {t1 - t0!r} "
            f"(timeline and timer disagree)"
        )
    if lo > t0 + tol:
        out.append(
            f"trace span starts at {lo!r}, after the measurement began at "
            f"{t0!r} (the pre-window barrier/sync should be traced)"
        )
    if hi < t1 - tol:
        out.append(
            f"trace span ends at {hi!r}, before the measurement ended at "
            f"{t1!r} (timeline does not cover the reported runtime)"
        )


def _check_nondegenerate(tracer: Tracer, out: List[str]) -> None:
    t0 = tracer.meta.get("t0")
    t1 = tracer.meta.get("t1")
    if t0 is None or t1 is None or t1 <= t0:
        return
    busy = any(
        ev.end > ev.start and ev.start < t1 and ev.end > t0 for ev in tracer.events
    )
    if not busy:
        out.append("no lane is ever busy inside the measured window")


def check_trace(tracer: Tracer) -> List[str]:
    """Run every invariant; returns the list of violations (empty = pass)."""
    out: List[str] = []
    _check_wellformed(tracer, out)
    _check_host_exclusive(tracer, out)
    _check_gpu_lanes(tracer, out)
    _check_known_lanes(tracer, out)
    _check_progress_model(tracer, out)
    _check_nvlink(tracer, out)
    _check_mpi_matching(tracer, out)
    _check_span(tracer, out)
    _check_nondegenerate(tracer, out)
    return out


def assert_invariants(tracer: Tracer) -> None:
    """Raise :class:`TraceInvariantError` unless every invariant holds."""
    violations = check_trace(tracer)
    if violations:
        raise TraceInvariantError(violations)
