"""Process-global trace capture: observe every run without editing configs.

The invariant checker wants to see the timeline of *every* run an
experiment performs, but experiments build their own :class:`RunConfig`
objects deep inside sweep helpers. ``capture_traces`` installs a
process-global observer: while active, :func:`repro.core.runner.run`
forces ``trace=True`` on every config (bypassing the run cache, which
never stores traced runs) and hands each finished :class:`RunResult` to
the callback before returning it.

Scalar outcomes are unaffected — tracing only observes the simulation, it
never schedules anything — so experiment rows regenerated under capture
are identical to uncaptured ones (asserted in ``tests/obs``).

Usage::

    from repro.obs.capture import capture_traces

    seen = []
    with capture_traces(seen.append):
        run_experiment("fig9", fast=True)
    for result in seen:
        assert_invariants(result.tracer)
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.config import RunResult

__all__ = ["capture_traces", "active_capture"]

_active: Optional[Callable[["RunResult"], None]] = None


def active_capture() -> Optional[Callable[["RunResult"], None]]:
    """The installed capture callback, or ``None`` (the common case)."""
    return _active


@contextmanager
def capture_traces(callback: Callable[["RunResult"], None]):
    """Force tracing on every run inside the block; feed results to ``callback``."""
    global _active
    if _active is not None:
        raise RuntimeError("trace capture is already active (no nesting)")
    _active = callback
    try:
        yield
    finally:
        _active = None
