"""Derived overlap metrics: occupancy, overlap matrix, hidden-comm fraction,
and a critical-path decomposition of the traced window.

These turn a raw timeline into the numbers the paper argues with:

* **occupancy** — fraction of the measured window each lane is busy
  (Fig. 3–12 are, at heart, occupancy statements: "the GPU never idles");
* **overlap matrix** — pairwise seconds during which two resources are
  simultaneously busy;
* **overlap fraction** — of all communication time (MPI wire + PCIe +
  async copy engines), how much is *hidden* behind compute (host or GPU
  kernels)? §V-E's 82-vs-24 GF ordering on Yona is exactly this number:
  ``hybrid_overlap`` hides nearly everything, ``gpu_bulk`` hides ~0;
* **critical path** — a decomposition of the measured window into which
  resource class was active (compute / communication-only / idle), i.e.
  where the wall-clock actually went.

All metrics are computed over the *measured window* ``[t0, t1]`` recorded
in ``tracer.meta`` (falling back to the full span), so untimed setup/drain
work does not dilute them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.tracer import Tracer, intervals_intersection

__all__ = [
    "COMPUTE_LANES",
    "COMM_LANES",
    "OverlapMetrics",
    "lane_occupancy",
    "overlap_matrix",
    "overlap_fraction",
    "critical_path",
    "compute_metrics",
]

#: Resources that count as computation when deciding whether communication
#: is hidden. ("host" covers CPU sweeps/packs; "gpu-kernel" device sweeps.)
COMPUTE_LANES: Tuple[str, ...] = ("host", "gpu-kernel")

#: Resources that count as communication/data movement.
#: "mpi" = wire time of MPI messages; "gpu-copy" = async copy engines;
#: "pcie" = blocking pageable copies (§IV-F's synchronous path);
#: "progress" = background wire time advanced by a progress thread or NIC
#: offload engine (non-manual-poll progress models); "nvlink" = GPU
#: peer-to-peer copies over the node's NVLink-class fabric.
COMM_LANES: Tuple[str, ...] = ("mpi", "gpu-copy", "pcie", "progress", "nvlink")


def _clip(
    ivals: List[Tuple[float, float]], t0: float, t1: float
) -> List[Tuple[float, float]]:
    """Restrict merged intervals to the window [t0, t1]."""
    out = []
    for s, e in ivals:
        s, e = max(s, t0), min(e, t1)
        if e > s:
            out.append((s, e))
    return out


def _union(lists: List[List[Tuple[float, float]]]) -> List[Tuple[float, float]]:
    """Merge several sorted merged interval lists into one."""
    ivals = sorted(iv for lst in lists for iv in lst)
    out: List[Tuple[float, float]] = []
    for s, e in ivals:
        if out and s <= out[-1][1]:
            if e > out[-1][1]:
                out[-1] = (out[-1][0], e)
        else:
            out.append((s, e))
    return out


def _window(tracer: Tracer) -> Tuple[float, float]:
    t0 = tracer.meta.get("t0")
    t1 = tracer.meta.get("t1")
    if t0 is None or t1 is None or t1 <= t0:
        return tracer.span()
    return float(t0), float(t1)


def lane_occupancy(tracer: Tracer) -> Dict[str, float]:
    """Busy fraction of the measured window, per resource lane.

    A resource busy on several groups (e.g. "host" on four ranks) is
    merged: the occupancy answers "was *anything* of this kind running?",
    which is the overlap question. Per-group occupancy is available through
    :meth:`Tracer.busy_time` with ``group=``.
    """
    t0, t1 = _window(tracer)
    length = t1 - t0
    if length <= 0:
        return {}
    out: Dict[str, float] = {}
    for lane in dict.fromkeys(lane for _, lane in tracer.lane_keys()):
        busy = sum(e - s for s, e in _clip(tracer.merged_intervals(lane), t0, t1))
        out[lane] = busy / length
    return out


def overlap_matrix(tracer: Tracer) -> Dict[Tuple[str, str], float]:
    """Pairwise seconds of simultaneous busyness inside the window.

    Keys are unordered resource pairs stored as sorted tuples; the diagonal
    carries each lane's own busy time.
    """
    t0, t1 = _window(tracer)
    lanes = list(dict.fromkeys(lane for _, lane in tracer.lane_keys()))
    clipped = {l: _clip(tracer.merged_intervals(l), t0, t1) for l in lanes}
    out: Dict[Tuple[str, str], float] = {}
    for i, a in enumerate(lanes):
        for b in lanes[i:]:
            if a == b:
                out[(a, a)] = sum(e - s for s, e in clipped[a])
            else:
                key = tuple(sorted((a, b)))
                out[key] = intervals_intersection(clipped[a], clipped[b])
    return out


def overlap_fraction(
    tracer: Tracer,
    comm_lanes: Tuple[str, ...] = COMM_LANES,
    compute_lanes: Tuple[str, ...] = COMPUTE_LANES,
) -> float:
    """Fraction of communication time hidden behind computation.

    ``hidden / total`` where *total* is the union busy time of the comm
    lanes inside the measured window and *hidden* is the part of it during
    which at least one compute lane is also busy. Returns 0.0 when there is
    no communication at all (nothing to hide — the resident implementation).
    """
    t0, t1 = _window(tracer)
    comm = _union([_clip(tracer.merged_intervals(l), t0, t1) for l in comm_lanes])
    total = sum(e - s for s, e in comm)
    if total <= 0:
        return 0.0
    compute = _union(
        [_clip(tracer.merged_intervals(l), t0, t1) for l in compute_lanes]
    )
    hidden = intervals_intersection(comm, compute)
    return hidden / total


def critical_path(
    tracer: Tracer,
    compute_lanes: Tuple[str, ...] = COMPUTE_LANES,
    comm_lanes: Tuple[str, ...] = COMM_LANES,
) -> Dict[str, float]:
    """Decompose the measured window into compute / comm-only / idle seconds.

    Each instant is attributed to exactly one class — ``compute`` when any
    compute lane is busy (communication underneath is *hidden*), else
    ``comm`` when any comm lane is busy (*exposed* communication), else
    ``idle`` (latency, barriers, launch gaps). The three terms sum to the
    window length, so this is the answer to "where did the step time go?".
    """
    t0, t1 = _window(tracer)
    length = max(0.0, t1 - t0)
    compute = _union(
        [_clip(tracer.merged_intervals(l), t0, t1) for l in compute_lanes]
    )
    comm = _union([_clip(tracer.merged_intervals(l), t0, t1) for l in comm_lanes])
    compute_s = sum(e - s for s, e in compute)
    comm_exposed = sum(e - s for s, e in comm) - intervals_intersection(comm, compute)
    idle = max(0.0, length - compute_s - comm_exposed)
    return {
        "window_s": length,
        "compute_s": compute_s,
        "exposed_comm_s": comm_exposed,
        "idle_s": idle,
    }


@dataclass
class OverlapMetrics:
    """Derived overlap statistics of one traced run."""

    #: resource lane -> busy fraction of the measured window.
    occupancy: Dict[str, float] = field(default_factory=dict)
    #: sorted resource pair -> simultaneous busy seconds.
    overlap_s: Dict[Tuple[str, str], float] = field(default_factory=dict)
    #: fraction of comm time hidden behind compute (the §V-E number).
    overlap_fraction: float = 0.0
    #: compute / exposed-comm / idle decomposition of the window.
    critical_path: Dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly rendering (pair keys joined with '+')."""
        return {
            "occupancy": dict(self.occupancy),
            "overlap_s": {"+".join(k): v for k, v in self.overlap_s.items()},
            "overlap_fraction": self.overlap_fraction,
            "critical_path": dict(self.critical_path),
        }

    def summary(self) -> str:
        """Short human-readable rendering."""
        occ = "  ".join(f"{k}={v:.0%}" for k, v in sorted(self.occupancy.items()))
        cp = self.critical_path
        return (
            f"overlap fraction {self.overlap_fraction:.1%} "
            f"(compute {cp.get('compute_s', 0) * 1e3:.2f} ms, exposed comm "
            f"{cp.get('exposed_comm_s', 0) * 1e3:.2f} ms, idle "
            f"{cp.get('idle_s', 0) * 1e3:.2f} ms)\n  occupancy: {occ}"
        )


def compute_metrics(tracer: Tracer) -> OverlapMetrics:
    """All derived metrics of one trace (attached to ``RunResult.overlap``)."""
    return OverlapMetrics(
        occupancy=lane_occupancy(tracer),
        overlap_s=overlap_matrix(tracer),
        overlap_fraction=overlap_fraction(tracer),
        critical_path=critical_path(tracer),
    )
