"""Structured execution tracing: lanes keyed by ``(group, resource)``.

The tracer is the substrate of the observability subsystem (the paper's
entire subject is *which activities actually overlap* — CPU compute, GPU
kernels, MPI messages, PCIe copies). Every timed activity in the simulator
records an interval on a **lane**: the pair of a *group* (an MPI rank, a
GPU device, or a shared link — see the group-id conventions below) and a
*resource* string (``"host"``, ``"gpu-kernel"``, ``"mpi"``, ``"pcie"``,
...). Counters record scalar time series (e.g. in-flight transfers), and
instantaneous marks (zero-length intervals) capture protocol actions such
as ``isend``/``irecv`` posts for the invariant checker.

Group-id conventions
--------------------
* ``0 <= g < GPU_GROUP_BASE`` — MPI rank ``g``;
* ``GPU_GROUP_BASE <= g < LINK_GROUP_BASE`` — GPU device ``g - base``;
* ``g >= LINK_GROUP_BASE`` — a shared link (NIC, PCIe wire).

Display names for groups are registered with :meth:`Tracer.set_group_name`
and used by the ASCII renderer and the Chrome-trace exporter (where groups
become Perfetto "processes" and resources become "threads").

Tracing is **zero-cost when disabled**: nothing in the simulator allocates
or branches beyond one ``if tracer is not None`` per timed operation, and
recording never changes simulated time (a traced run is bit-identical to
an untraced one — ``tests/obs`` asserts this).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "GPU_GROUP_BASE",
    "LINK_GROUP_BASE",
    "TraceEvent",
    "CounterSample",
    "Tracer",
]

#: First group id used for GPU devices (below: MPI ranks).
GPU_GROUP_BASE = 1_000
#: First group id used for shared links (NICs, PCIe wires).
LINK_GROUP_BASE = 2_000


@dataclass(frozen=True)
class TraceEvent:
    """One traced interval on a ``(group, lane)`` timeline.

    ``start == end`` marks an instantaneous event (a protocol action such
    as an ``isend`` post); the invariant checker reads those through
    :attr:`args`.
    """

    lane: str  # resource: "host", "gpu-kernel", "gpu-copy", "mpi", "pcie", ...
    name: str  # activity: "compute", "interior", "h2d", "isend", ...
    start: float
    end: float
    group: int = 0  # MPI rank / GPU device / link (see module docstring)
    cat: str = ""  # Chrome-trace category ("compute", "comm", "copy", ...)
    args: Optional[Dict[str, Any]] = None  # free-form payload (checker input)

    @property
    def duration(self) -> float:
        """Interval length in simulated seconds."""
        return self.end - self.start

    # Backwards-compatible alias: lanes were keyed by rank historically.
    @property
    def rank(self) -> int:
        """Alias of :attr:`group` (rank for host-side events)."""
        return self.group


@dataclass(frozen=True)
class CounterSample:
    """One sample of a scalar counter series."""

    name: str
    time: float
    value: float
    group: int = 0


class Tracer:
    """Collects intervals/counters and renders or exports them.

    The analysis helpers (:meth:`busy_time`, :meth:`overlap_time`) merge a
    resource's intervals **across groups** by default, which preserves the
    historical single-rank behaviour and is what the overlap metrics want;
    pass ``group=`` to restrict to one timeline.
    """

    def __init__(self):
        self.events: List[TraceEvent] = []
        self.counters: List[CounterSample] = []
        #: run-level facts (measured window, device capacities, config).
        self.meta: Dict[str, Any] = {}
        #: group id -> display name ("rank 0", "gpu0", "nic0", ...).
        self.group_names: Dict[int, str] = {}

    # -- recording -------------------------------------------------------------
    def record(
        self,
        lane: str,
        name: str,
        start: float,
        end: float,
        group: int = 0,
        cat: str = "",
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Add one interval (``end >= start``; lane/name non-empty)."""
        if not lane or not isinstance(lane, str):
            raise ValueError(f"trace lane must be a non-empty string, got {lane!r}")
        if not name or not isinstance(name, str):
            raise ValueError(f"trace name must be a non-empty string, got {name!r}")
        if not (math.isfinite(start) and math.isfinite(end)):
            raise ValueError(f"non-finite trace interval: [{start}, {end}]")
        if end < start:
            raise ValueError(f"interval ends before it starts: {start} > {end}")
        self.events.append(TraceEvent(lane, name, start, end, group, cat, args))

    def mark(
        self,
        lane: str,
        name: str,
        time: float,
        group: int = 0,
        cat: str = "",
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Add an instantaneous event (zero-length interval)."""
        self.record(lane, name, time, time, group, cat, args)

    def counter(self, name: str, time: float, value: float, group: int = 0) -> None:
        """Sample a scalar counter series at ``time``."""
        if not name or not isinstance(name, str):
            raise ValueError(f"counter name must be a non-empty string, got {name!r}")
        if not math.isfinite(time):
            raise ValueError(f"non-finite counter time: {time!r}")
        self.counters.append(CounterSample(name, float(time), float(value), group))

    def set_group_name(self, group: int, name: str) -> None:
        """Register a display name for a group id."""
        self.group_names[group] = name

    # -- lane enumeration -------------------------------------------------------
    def lane_keys(self) -> List[Tuple[int, str]]:
        """Distinct ``(group, resource)`` lanes.

        Ordered by group id first, then first-appearance within the group —
        so the ordering is **stable under concurrent-group interleaving**:
        however events from different ranks interleave in recording order,
        each rank's lanes keep their own first-appearance order and ranks
        stay sorted.
        """
        first_seen: Dict[Tuple[int, str], int] = {}
        for i, ev in enumerate(self.events):
            first_seen.setdefault((ev.group, ev.lane), i)
        return sorted(first_seen, key=lambda k: (k[0], first_seen[k]))

    def lane_label(self, group: int, lane: str) -> str:
        """Human-readable label for one lane."""
        nrank_groups = len({g for g, _ in self.lane_keys() if g < GPU_GROUP_BASE})
        return self._label(group, lane, nrank_groups > 1)

    def _label(self, group: int, lane: str, multi_rank: bool) -> str:
        if group < GPU_GROUP_BASE:
            return f"r{group}:{lane}" if multi_rank else lane
        gname = self.group_names.get(group)
        # Device/link lanes: prefix only when several devices share a lane
        # name (single-GPU traces keep the historical bare "gpu-kernel").
        peers = {g for g, l in self.lane_keys() if l == lane and g != group}
        if peers and gname:
            return f"{gname}:{lane}"
        return lane

    def lanes(self) -> List[str]:
        """Distinct lane display labels (see :meth:`lane_keys` for order)."""
        keys = self.lane_keys()
        multi_rank = len({g for g, _ in keys if g < GPU_GROUP_BASE}) > 1
        out: List[str] = []
        for g, lane in keys:
            label = self._label(g, lane, multi_rank)
            if label not in out:
                out.append(label)
        return out

    # -- analysis --------------------------------------------------------------
    def span(self) -> Tuple[float, float]:
        """(earliest start, latest end) over all events."""
        if not self.events:
            return (0.0, 0.0)
        return (
            min(ev.start for ev in self.events),
            max(ev.end for ev in self.events),
        )

    def merged_intervals(
        self, lane: str, group: Optional[int] = None
    ) -> List[Tuple[float, float]]:
        """A lane's intervals, sorted and merged (overlaps coalesced).

        Zero-length marks are dropped (they carry no busy time).
        """
        ivals = sorted(
            (ev.start, ev.end)
            for ev in self.events
            if ev.lane == lane
            and ev.end > ev.start
            and (group is None or ev.group == group)
        )
        out: List[Tuple[float, float]] = []
        for s, e in ivals:
            if out and s <= out[-1][1]:
                if e > out[-1][1]:
                    out[-1] = (out[-1][0], e)
            else:
                out.append((s, e))
        return out

    def busy_time(self, lane: str, group: Optional[int] = None) -> float:
        """Union length of a lane's intervals (overlaps merged)."""
        return sum(e - s for s, e in self.merged_intervals(lane, group))

    def overlap_time(
        self,
        lane_a: str,
        lane_b: str,
        group_a: Optional[int] = None,
        group_b: Optional[int] = None,
    ) -> float:
        """Time during which both lanes are simultaneously busy.

        This is the quantity the paper's implementations try to maximize
        (e.g. GPU-kernel time overlapped with host MPI time).
        """
        a = self.merged_intervals(lane_a, group_a)
        b = self.merged_intervals(lane_b, group_b)
        return intervals_intersection(a, b)

    def counter_series(self, name: str, group: Optional[int] = None) -> List[Tuple[float, float]]:
        """(time, value) samples of one counter, in recording order."""
        return [
            (c.time, c.value)
            for c in self.counters
            if c.name == name and (group is None or c.group == group)
        ]

    # -- rendering --------------------------------------------------------------
    def timeline_text(
        self,
        width: int = 100,
        window: Optional[Tuple[float, float]] = None,
    ) -> str:
        """ASCII Gantt chart: one row per lane, time left to right."""
        if not self.events:
            return "(no trace events)"
        t0, t1 = window if window is not None else self.span()
        if t1 <= t0:
            return "(empty window)"
        scale = width / (t1 - t0)
        keys = self.lane_keys()
        multi_rank = len({g for g, _ in keys if g < GPU_GROUP_BASE}) > 1
        labels = [self._label(g, lane, multi_rank) for g, lane in keys]
        # Collapse lanes that share a display label (e.g. the same resource
        # recorded by several groups in a single-rank trace).
        rows: Dict[str, List[Tuple[int, str]]] = {}
        order: List[str] = []
        for key, label in zip(keys, labels):
            if label not in rows:
                rows[label] = []
                order.append(label)
            rows[label].append(key)
        lane_width = max(len(l) for l in order) + 1
        lines = [
            " " * lane_width
            + f"t = [{t0 * 1e3:.3f} ms .. {t1 * 1e3:.3f} ms], {width} cols"
        ]
        for label in order:
            keyset = set(rows[label])
            row = [" "] * width
            for ev in self.events:
                if (ev.group, ev.lane) not in keyset or ev.end <= t0 or ev.start >= t1:
                    continue
                a = max(0, int((ev.start - t0) * scale))
                b = min(width, max(a + 1, int((ev.end - t0) * scale)))
                chunk = ev.name[: b - a]
                for k in range(a, b):
                    off = k - a
                    row[k] = chunk[off] if off < len(chunk) else "="
            lines.append(label.ljust(lane_width) + "".join(row))
        return "\n".join(lines)


def intervals_intersection(
    a: List[Tuple[float, float]], b: List[Tuple[float, float]]
) -> float:
    """Total length of the intersection of two sorted merged interval lists."""
    total = 0.0
    i = j = 0
    while i < len(a) and j < len(b):
        lo = max(a[i][0], b[j][0])
        hi = min(a[i][1], b[j][1])
        if hi > lo:
            total += hi - lo
        if a[i][1] < b[j][1]:
            i += 1
        else:
            j += 1
    return total
