"""Terminal rendering of experiment series: log-log ASCII charts.

The paper's scaling figures are log-x/log-y line plots; this module renders
an :class:`~repro.experiments.common.ExperimentResult`'s series the same
way, so ``advection-repro experiment fig10 --plot`` shows the figure's
shape directly in the terminal.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

__all__ = ["ascii_plot"]

_MARKERS = "ox+*#@%&sdhv"


def _plottable(x, y, logx: bool) -> bool:
    """Whether one ``(x, y)`` point can land on the chart.

    One shared predicate for the bounds pass *and* the per-series pass:
    numeric non-bool abscissa, numeric positive ordinate, and a positive
    abscissa under a log x-axis.  The per-series pass used to run
    ``sorted(pts.items())`` over the raw keys, which raised ``TypeError``
    on mixed str/int abscissae the bounds pass had already filtered out.
    """
    if isinstance(x, bool) or not isinstance(x, (int, float)):
        return False
    if isinstance(y, bool) or not isinstance(y, (int, float)):
        return False
    if y <= 0:
        return False
    if logx and x <= 0:
        return False
    return True


def ascii_plot(
    series: Dict[str, Dict],
    width: int = 72,
    height: int = 22,
    logx: bool = True,
    logy: bool = True,
    title: str = "",
) -> str:
    """Render ``{name: {x: y}}`` as an ASCII chart with a marker legend.

    Non-plottable points (string labels mixed into a numeric series,
    non-positive values on log axes) are skipped consistently in both the
    bounds and drawing passes.  Past ``len(_MARKERS)`` series the markers
    cycle, and the legend says so instead of silently aliasing.
    """
    points = [
        (x, y) for pts in series.values() for x, y in pts.items()
        if _plottable(x, y, logx)
    ]
    if not points:
        return "(no plottable points)"

    def tx(v):
        return math.log10(v) if logx else float(v)

    def ty(v):
        return math.log10(v) if logy else float(v)

    xs = [tx(x) for x, _ in points]
    ys = [ty(y) for _, y in points]
    x0, x1 = min(xs), max(xs)
    y0, y1 = min(ys), max(ys)
    if x1 == x0:
        x1 = x0 + 1.0
    if y1 == y0:
        y1 = y0 + 1.0

    grid = [[" "] * width for _ in range(height)]
    legend = []
    for idx, (name, pts) in enumerate(series.items()):
        marker = _MARKERS[idx % len(_MARKERS)]
        legend.append(f"  {marker} {name}")
        plotted = sorted(
            (x, y) for x, y in pts.items() if _plottable(x, y, logx)
        )
        for x, y in plotted:
            col = int((tx(x) - x0) / (x1 - x0) * (width - 1))
            row = height - 1 - int((ty(y) - y0) / (y1 - y0) * (height - 1))
            grid[row][col] = marker
    if len(series) > len(_MARKERS):
        legend.append(
            f"  (markers cycle: {len(series)} series share "
            f"{len(_MARKERS)} marker glyphs)"
        )

    def fmt(v, log):
        raw = 10**v if log else v
        return f"{raw:g}"

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{fmt(y1, logy):>10s} +" + "-" * width)
    for i, row in enumerate(grid):
        label = fmt(y0 + (y1 - y0) * (height - 1 - i) / (height - 1), logy) if i % 5 == 0 else ""
        lines.append(f"{label:>10s} |" + "".join(row))
    lines.append(f"{fmt(y0, logy):>10s} +" + "-" * width)
    lines.append(
        " " * 11 + f"{fmt(x0, logx)}" + " " * max(1, width - 18) + f"{fmt(x1, logx)}"
    )
    lines.extend(legend)
    return "\n".join(lines)
