"""Terminal rendering of experiment series: log-log ASCII charts.

The paper's scaling figures are log-x/log-y line plots; this module renders
an :class:`~repro.experiments.common.ExperimentResult`'s series the same
way, so ``advection-repro experiment fig10 --plot`` shows the figure's
shape directly in the terminal.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

__all__ = ["ascii_plot"]

_MARKERS = "ox+*#@%&sdhv"


def ascii_plot(
    series: Dict[str, Dict],
    width: int = 72,
    height: int = 22,
    logx: bool = True,
    logy: bool = True,
    title: str = "",
) -> str:
    """Render ``{name: {x: y}}`` as an ASCII chart with a marker legend."""
    points = [
        (x, y) for pts in series.values() for x, y in pts.items()
        if isinstance(x, (int, float)) and y > 0
    ]
    if not points:
        return "(no plottable points)"

    def tx(v):
        return math.log10(v) if logx else float(v)

    def ty(v):
        return math.log10(v) if logy else float(v)

    xs = [tx(x) for x, _ in points]
    ys = [ty(y) for _, y in points]
    x0, x1 = min(xs), max(xs)
    y0, y1 = min(ys), max(ys)
    if x1 == x0:
        x1 = x0 + 1.0
    if y1 == y0:
        y1 = y0 + 1.0

    grid = [[" "] * width for _ in range(height)]
    legend = []
    for idx, (name, pts) in enumerate(series.items()):
        marker = _MARKERS[idx % len(_MARKERS)]
        legend.append(f"  {marker} {name}")
        for x, y in sorted(pts.items()):
            if not isinstance(x, (int, float)) or y <= 0:
                continue
            col = int((tx(x) - x0) / (x1 - x0) * (width - 1))
            row = height - 1 - int((ty(y) - y0) / (y1 - y0) * (height - 1))
            grid[row][col] = marker

    def fmt(v, log):
        raw = 10**v if log else v
        return f"{raw:g}"

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{fmt(y1, logy):>10s} +" + "-" * width)
    for i, row in enumerate(grid):
        label = fmt(y0 + (y1 - y0) * (height - 1 - i) / (height - 1), logy) if i % 5 == 0 else ""
        lines.append(f"{label:>10s} |" + "".join(row))
    lines.append(f"{fmt(y0, logy):>10s} +" + "-" * width)
    lines.append(
        " " * 11 + f"{fmt(x0, logx)}" + " " * max(1, width - 18) + f"{fmt(x1, logx)}"
    )
    lines.extend(legend)
    return "\n".join(lines)
