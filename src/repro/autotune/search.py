"""Search strategies over the tuning space."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from repro.autotune.space import TuningPoint, TuningSpace
from repro.core.runner import run
from repro.machines.spec import MachineSpec

__all__ = ["SearchResult", "exhaustive_search", "greedy_search"]


@dataclass
class SearchResult:
    """Outcome of a tuning search.

    ``evaluations`` counts *simulator calls* — revisiting a memoized point
    is free and does not count (it used to, which made the greedy
    strategy's cost look inflated by exactly its revisit rate). ``trace``
    records every point the search touched, including invalid ones, which
    score ``None``.
    """

    best_point: TuningPoint
    best_gflops: float
    evaluations: int
    #: every evaluated point -> GF (``None`` for invalid points)
    trace: Dict[TuningPoint, Optional[float]] = field(default_factory=dict)


def _evaluate(
    space: TuningSpace, point: TuningPoint, trace: Dict[TuningPoint, Optional[float]]
) -> "tuple[Optional[float], bool]":
    """``(gflops, fresh)`` for one point, memoized in ``trace``.

    ``fresh`` is True only when the simulator actually ran; memoized
    revisits (including of *invalid* points, stored as ``None`` so they
    are never re-attempted) return ``fresh=False``.
    """
    if point in trace:
        return trace[point], False
    try:
        cfg = point.apply(space.machine, space.impl_key, space.cores)
        gf = run(cfg).gflops
    except ValueError:
        gf = None
    trace[point] = gf
    return gf, True


def exhaustive_search(
    machine: MachineSpec, impl_key: str, cores: int
) -> SearchResult:
    """Evaluate every point; ground truth for the greedy strategy."""
    space = TuningSpace(machine, impl_key, cores)
    trace: Dict[TuningPoint, Optional[float]] = {}
    best_point, best_gf = None, float("-inf")
    n = 0
    for point in space.points():
        gf, fresh = _evaluate(space, point, trace)
        n += int(fresh)
        if gf is not None and gf > best_gf:
            best_point, best_gf = point, gf
    if best_point is None:
        raise ValueError(f"no valid tuning point for {impl_key} at {cores} cores")
    return SearchResult(best_point, best_gf, n, trace)


def greedy_search(
    machine: MachineSpec, impl_key: str, cores: int, sweeps: int = 2
) -> SearchResult:
    """Coordinate descent: optimize one axis at a time, a few sweeps.

    This is the strategy a practical auto-tuner would run online; tests
    compare its result against :func:`exhaustive_search` (it typically
    lands within a few percent at a fraction of the evaluations).
    """
    space = TuningSpace(machine, impl_key, cores)
    trace: Dict[TuningPoint, Optional[float]] = {}
    current = space.default_point()
    current_gf, fresh = _evaluate(space, current, trace)
    n = int(fresh)
    if current_gf is None:
        # Find any valid starting point.
        for point in space.points():
            current_gf, fresh = _evaluate(space, point, trace)
            n += int(fresh)
            if current_gf is not None:
                current = point
                break
        else:
            raise ValueError(f"no valid tuning point for {impl_key} at {cores} cores")
    for _ in range(sweeps):
        for axis, values in space.axes():
            for v in values:
                candidate = replace(current, **{axis: v})
                if candidate == current:
                    continue
                gf, fresh = _evaluate(space, candidate, trace)
                n += int(fresh)
                if gf is not None and gf > current_gf:
                    current, current_gf = candidate, gf
    return SearchResult(current, current_gf, n, trace)
