"""Search strategies over the tuning space."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from repro.autotune.space import TuningPoint, TuningSpace
from repro.core.runner import run
from repro.machines.spec import MachineSpec

__all__ = ["SearchResult", "exhaustive_search", "greedy_search"]


@dataclass
class SearchResult:
    """Outcome of a tuning search."""

    best_point: TuningPoint
    best_gflops: float
    evaluations: int
    #: every evaluated point -> GF (the tuner's trace)
    trace: Dict[TuningPoint, float] = field(default_factory=dict)


def _evaluate(
    space: TuningSpace, point: TuningPoint, cache: Dict[TuningPoint, float]
) -> Optional[float]:
    if point in cache:
        return cache[point]
    try:
        cfg = point.apply(space.machine, space.impl_key, space.cores)
        gf = run(cfg).gflops
    except ValueError:
        gf = None
    if gf is not None:
        cache[point] = gf
    return gf


def exhaustive_search(
    machine: MachineSpec, impl_key: str, cores: int
) -> SearchResult:
    """Evaluate every point; ground truth for the greedy strategy."""
    space = TuningSpace(machine, impl_key, cores)
    cache: Dict[TuningPoint, float] = {}
    best_point, best_gf = None, float("-inf")
    n = 0
    for point in space.points():
        gf = _evaluate(space, point, cache)
        n += 1
        if gf is not None and gf > best_gf:
            best_point, best_gf = point, gf
    if best_point is None:
        raise ValueError(f"no valid tuning point for {impl_key} at {cores} cores")
    return SearchResult(best_point, best_gf, n, cache)


def greedy_search(
    machine: MachineSpec, impl_key: str, cores: int, sweeps: int = 2
) -> SearchResult:
    """Coordinate descent: optimize one axis at a time, a few sweeps.

    This is the strategy a practical auto-tuner would run online; tests
    compare its result against :func:`exhaustive_search` (it typically
    lands within a few percent at a fraction of the evaluations).
    """
    space = TuningSpace(machine, impl_key, cores)
    cache: Dict[TuningPoint, float] = {}
    current = space.default_point()
    current_gf = _evaluate(space, current, cache)
    n = 1
    if current_gf is None:
        # Find any valid starting point.
        for point in space.points():
            current_gf = _evaluate(space, point, cache)
            n += 1
            if current_gf is not None:
                current = point
                break
        else:
            raise ValueError(f"no valid tuning point for {impl_key} at {cores} cores")
    for _ in range(sweeps):
        for axis, values in space.axes():
            for v in values:
                candidate = replace(current, **{axis: v})
                if candidate == current:
                    continue
                gf = _evaluate(space, candidate, cache)
                n += 1
                if gf is not None and gf > current_gf:
                    current, current_gf = candidate, gf
    return SearchResult(current, current_gf, n, cache)
