"""Search strategies over the tuning space."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

from repro.autotune.space import TuningPoint, TuningSpace
from repro.core.config import RunConfig
from repro.core.runner import run
from repro.machines.spec import MachineSpec

__all__ = ["SearchResult", "exhaustive_search", "greedy_search"]


@dataclass
class SearchResult:
    """Outcome of a tuning search.

    ``evaluations`` counts *simulator calls* — revisiting a memoized point
    is free and does not count (it used to, which made the greedy
    strategy's cost look inflated by exactly its revisit rate). ``trace``
    records every point the search touched, including invalid ones, which
    score ``None``.
    """

    best_point: TuningPoint
    best_gflops: float
    evaluations: int
    #: every evaluated point -> GF (``None`` for invalid points)
    trace: Dict[TuningPoint, Optional[float]] = field(default_factory=dict)


def _evaluate(
    space: TuningSpace, point: TuningPoint, trace: Dict[TuningPoint, Optional[float]]
) -> "tuple[Optional[float], bool]":
    """``(gflops, fresh)`` for one point, memoized in ``trace``.

    ``fresh`` is True only when the simulator actually ran; memoized
    revisits (including of *invalid* points, stored as ``None`` so they
    are never re-attempted) return ``fresh=False``.
    """
    if point in trace:
        return trace[point], False
    try:
        cfg = point.apply(space.machine, space.impl_key, space.cores)
        gf = run(cfg).gflops
    except ValueError:
        gf = None
    trace[point] = gf
    return gf, True


def _run_batch(cfgs: Sequence[RunConfig]) -> List[Optional[float]]:
    """GF for each config; ``None`` where the simulator rejects it.

    Routes through the process-wide scheduler when one is installed —
    all the candidates of a search axis run as one deduplicated,
    possibly-parallel submit — and falls back to serial ``run`` calls
    otherwise.  ``ValueError`` means "invalid point" in both paths (the
    historical contract of :func:`_evaluate`); other errors propagate.
    """
    from repro.sched import active_scheduler

    sched = active_scheduler()
    if sched is None:
        out: List[Optional[float]] = []
        for cfg in cfgs:
            try:
                out.append(run(cfg).gflops)
            except ValueError:
                out.append(None)
        return out
    results = sched.map(cfgs, return_exceptions=True)
    out = []
    for r in results:
        if isinstance(r, ValueError):
            out.append(None)
        elif isinstance(r, BaseException):
            raise r
        else:
            out.append(r.gflops)
    return out


def _evaluate_batch(
    space: TuningSpace,
    points: Sequence[TuningPoint],
    trace: Dict[TuningPoint, Optional[float]],
) -> int:
    """Evaluate every not-yet-traced point in one batch.

    Returns the number of *fresh* evaluations (first visits, valid or
    not), matching :func:`_evaluate`'s accounting exactly: revisits are
    free, invalid points count once and memoize as ``None``.
    """
    fresh_pts: List[TuningPoint] = []
    cfgs: List[RunConfig] = []
    pending = set()
    n = 0
    for point in points:
        if point in trace or point in pending:
            continue
        n += 1
        pending.add(point)
        try:
            cfg = point.apply(space.machine, space.impl_key, space.cores)
        except ValueError:
            trace[point] = None
            continue
        fresh_pts.append(point)
        cfgs.append(cfg)
    for point, gf in zip(fresh_pts, _run_batch(cfgs)):
        trace[point] = gf
    return n


def exhaustive_search(
    machine: MachineSpec, impl_key: str, cores: int
) -> SearchResult:
    """Evaluate every point; ground truth for the greedy strategy."""
    space = TuningSpace(machine, impl_key, cores)
    trace: Dict[TuningPoint, Optional[float]] = {}
    points = list(space.points())
    # One batch: the whole space goes through the scheduler in one submit
    # (deduplicated and parallel when one is installed).  Folding the
    # memoized scores in iteration order with a strict ``>`` reproduces
    # the sequential first-maximum exactly.
    n = _evaluate_batch(space, points, trace)
    best_point, best_gf = None, float("-inf")
    for point in points:
        gf = trace.get(point)
        if gf is not None and gf > best_gf:
            best_point, best_gf = point, gf
    if best_point is None:
        raise ValueError(f"no valid tuning point for {impl_key} at {cores} cores")
    return SearchResult(best_point, best_gf, n, trace)


def greedy_search(
    machine: MachineSpec, impl_key: str, cores: int, sweeps: int = 2
) -> SearchResult:
    """Coordinate descent: optimize one axis at a time, a few sweeps.

    This is the strategy a practical auto-tuner would run online; tests
    compare its result against :func:`exhaustive_search` (it typically
    lands within a few percent at a fraction of the evaluations).
    """
    space = TuningSpace(machine, impl_key, cores)
    trace: Dict[TuningPoint, Optional[float]] = {}
    current = space.default_point()
    current_gf, fresh = _evaluate(space, current, trace)
    n = int(fresh)
    if current_gf is None:
        # Find any valid starting point.
        for point in space.points():
            current_gf, fresh = _evaluate(space, point, trace)
            n += int(fresh)
            if current_gf is not None:
                current = point
                break
        else:
            raise ValueError(f"no valid tuning point for {impl_key} at {cores} cores")
    for _ in range(sweeps):
        for axis, values in space.axes():
            # Batch the whole axis in one scheduler submit.  Within an
            # axis only that axis's field can change on an accept, so
            # ``replace(current, axis=v)`` is independent of mid-axis
            # accepts: the candidate set built from the axis-entry
            # ``current`` is exactly the set the sequential loop would
            # evaluate, and folding memoized scores in value order with a
            # strict ``>`` replays its accept trajectory verbatim.
            candidates = [
                replace(current, **{axis: v})
                for v in values
                if replace(current, **{axis: v}) != current
            ]
            n += _evaluate_batch(space, candidates, trace)
            for candidate in candidates:
                gf = trace.get(candidate)
                if gf is not None and gf > current_gf:
                    current, current_gf = candidate, gf
    return SearchResult(current, current_gf, n, trace)
