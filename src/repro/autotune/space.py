"""The discrete tuning space of the paper's performance parameters."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.config import RunConfig
from repro.core.registry import get_implementation
from repro.machines.spec import MachineSpec
from repro.perf.sweep import valid_thread_counts
from repro.simgpu.blockmodel import admissible_blocks

__all__ = ["TuningPoint", "TuningSpace"]


@dataclass(frozen=True)
class TuningPoint:
    """One assignment of the tunable parameters."""

    threads_per_task: int
    box_thickness: int = 1
    block: Optional[Tuple[int, int]] = None

    def apply(self, machine: MachineSpec, impl_key: str, cores: int) -> RunConfig:
        """Build the RunConfig for this point (may raise ValueError)."""
        return RunConfig(
            machine=machine,
            implementation=impl_key,
            cores=cores,
            threads_per_task=self.threads_per_task,
            box_thickness=self.box_thickness,
            block=self.block,
        )


class TuningSpace:
    """Enumerable tuning dimensions for one (machine, impl, cores) triple."""

    def __init__(self, machine: MachineSpec, impl_key: str, cores: int):
        self.machine = machine
        self.impl_key = impl_key
        self.cores = cores
        impl = get_implementation(impl_key)
        if impl.uses_mpi:
            self.thread_axis: List[int] = valid_thread_counts(machine, cores)
        else:
            self.thread_axis = [cores]
        self.thickness_axis: List[int] = (
            [1, 2, 3, 4, 6, 8, 12, 16] if impl_key.startswith("hybrid") else [1]
        )
        if impl.uses_gpu and machine.gpu is not None:
            # A coarse block grid keeps exhaustive search tractable; the
            # dedicated block sweep (Figs. 7/8) covers the fine grid.
            blocks = [
                b for b in admissible_blocks(machine.gpu) if b[1] in (4, 8, 11, 16)
            ]
            self.block_axis: List[Optional[Tuple[int, int]]] = [None] + blocks
        else:
            self.block_axis = [None]

    def axes(self):
        """(name, values) pairs for coordinate-descent ordering."""
        return [
            ("threads_per_task", self.thread_axis),
            ("box_thickness", self.thickness_axis),
            ("block", self.block_axis),
        ]

    def points(self):
        """All tuning points (exhaustive enumeration)."""
        for t in self.thread_axis:
            for thick in self.thickness_axis:
                for blk in self.block_axis:
                    yield TuningPoint(t, thick, blk)

    def default_point(self) -> TuningPoint:
        """A sensible starting point for greedy search."""
        return TuningPoint(
            threads_per_task=self.thread_axis[0],
            box_thickness=self.thickness_axis[0],
            block=None,
        )
