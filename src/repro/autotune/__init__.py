"""Auto-tuning over the paper's tuning space (extension of §VI).

The paper closes by arguing for automatic tuning of (at least) OpenMP
threads per MPI task, the CPU box thickness, and the GPU thread-block size,
and notes these parameters interact. This package provides:

* :class:`~repro.autotune.space.TuningSpace` — the discrete space for a
  machine/implementation/core-count triple;
* :func:`~repro.autotune.search.exhaustive_search` — ground truth;
* :func:`~repro.autotune.search.greedy_search` — coordinate descent, the
  cheap strategy an online tuner would use; tests measure how close it
  lands to the exhaustive optimum.
"""

from repro.autotune.search import SearchResult, exhaustive_search, greedy_search
from repro.autotune.space import TuningPoint, TuningSpace

__all__ = [
    "SearchResult",
    "TuningPoint",
    "TuningSpace",
    "exhaustive_search",
    "greedy_search",
]
