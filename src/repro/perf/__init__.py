"""Sweep and best-of selection harness.

The paper reports, for each implementation and core count, the best result
over a tuning space (threads/task, and for the hybrid codes the box
thickness). This package provides those sweeps plus small result
containers the experiment modules build their tables from.
"""

from repro.perf.sweep import (
    best_hybrid_config,
    best_over_threads,
    sweep_configs,
    valid_thread_counts,
)

__all__ = [
    "best_hybrid_config",
    "best_over_threads",
    "sweep_configs",
    "valid_thread_counts",
]
