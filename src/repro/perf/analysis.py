"""Derived performance metrics: speedup, efficiency, cost fractions.

The scaling figures show raw GF; these helpers compute the quantities the
paper discusses around them — parallel efficiency of a strong-scaling
series, the communication fraction of a step, and the overlap efficiency of
a traced run.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core.config import RunResult
from repro.des.trace import Tracer

__all__ = [
    "parallel_efficiency",
    "speedup_series",
    "host_fraction",
    "exposed_wait_fraction",
    "overlap_efficiency",
]


def speedup_series(series: Dict[int, float]) -> Dict[int, float]:
    """Speedup relative to the smallest core count in a GF-vs-cores series."""
    if not series:
        return {}
    base_cores = min(series)
    base = series[base_cores]
    if base <= 0:
        raise ValueError("non-positive baseline performance")
    return {c: v / base for c, v in series.items()}


def parallel_efficiency(series: Dict[int, float]) -> Dict[int, float]:
    """Strong-scaling efficiency: speedup / core-count ratio (1.0 = ideal)."""
    if not series:
        return {}
    base_cores = min(series)
    sp = speedup_series(series)
    return {c: sp[c] / (c / base_cores) for c in series}


def host_fraction(result: RunResult, phase: str) -> float:
    """Fraction of the measured window one host phase accounts for.

    Phases are the representative rank's accounting categories
    (``compute``, ``pack``, ``copy``, ``stage``, ...). Because phases can
    overlap other resources (not each other), fractions may sum below 1
    (waiting time) — the gap *is* the exposed communication.
    """
    if result.elapsed_s <= 0:
        raise ValueError("empty measurement")
    return result.phases.get(phase, 0.0) / result.elapsed_s


def exposed_wait_fraction(result: RunResult) -> float:
    """Fraction of the window the host spent waiting (no phase charged).

    For CPU-only implementations this is almost exactly the exposed
    communication time; for GPU implementations it also contains time
    blocked on device synchronization.

    Raises ``ValueError`` on an empty measurement (non-positive elapsed
    time), consistently with :func:`host_fraction` — previously this
    divided straight through and raised ``ZeroDivisionError`` instead.
    """
    if result.elapsed_s <= 0:
        raise ValueError("empty measurement")
    busy = sum(result.phases.values())
    return max(0.0, 1.0 - busy / result.elapsed_s)


def overlap_efficiency(tracer: Tracer, lane_a: str = "host",
                       lane_b: str = "gpu-kernel") -> Optional[float]:
    """How much of the shorter lane's busy time overlaps the other lane.

    1.0 means the shorter resource ran entirely under the longer one — the
    ideal the §IV-I implementation aims for. ``None`` if either lane is
    absent.
    """
    busy_a = tracer.busy_time(lane_a)
    busy_b = tracer.busy_time(lane_b)
    if busy_a == 0 or busy_b == 0:
        return None
    return tracer.overlap_time(lane_a, lane_b) / min(busy_a, busy_b)
