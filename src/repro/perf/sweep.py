"""Parameter sweeps and best-of selection."""

from __future__ import annotations

import logging
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.core.config import RunConfig, RunResult
from repro.core.registry import get_implementation
from repro.core.runner import run
from repro.machines.spec import MachineSpec

__all__ = [
    "valid_thread_counts",
    "SweepResults",
    "sweep_configs",
    "tuning_configs",
    "best_over_threads",
    "best_hybrid_config",
]

log = logging.getLogger("repro.perf.sweep")

#: Box thicknesses swept for the hybrid implementations (paper §V-E).
DEFAULT_THICKNESSES: Tuple[int, ...] = (1, 2, 3, 4, 6, 8, 10, 12, 16)


def valid_thread_counts(machine: MachineSpec, cores: int) -> List[int]:
    """Thread counts from the machine's measured set that fit ``cores``.

    A count is valid when it divides the core count, packs whole nodes
    (beyond one node) and does not exceed one node.
    """
    out = []
    node_cores = machine.node.cores
    for t in machine.thread_options:
        if t > cores or cores % t:
            continue
        if node_cores % t:
            continue
        out.append(t)
    return out


class SweepResults(List[RunResult]):
    """Results of a sweep: a plain list plus skip bookkeeping.

    ``skipped`` counts configurations rejected *eagerly* by
    :func:`repro.sched.validate_config` (infeasible thickness, no valid
    task grid, missing GPU, ...). Code that treated the return value as a
    ``list`` keeps working unchanged.
    """

    def __init__(self, results: Iterable[RunResult] = (), skipped: int = 0):
        super().__init__(results)
        self.skipped = skipped


def sweep_configs(configs: Iterable[RunConfig]) -> SweepResults:
    """Run every *feasible* configuration; count the infeasible ones.

    Invalid combinations (e.g. a thickness too thick for the subdomain)
    are part of any real sweep.  They used to be detected by swallowing
    every ``ValueError`` raised *during* simulation — which also hid real
    model and runtime errors as "invalid points".  Feasibility is now
    checked up front with :func:`repro.sched.validate_config` (the same
    rules the simulator enforces); infeasible configs are skipped and
    counted in ``.skipped``, and any error the simulator itself raises
    propagates to the caller.

    When a process-wide scheduler is installed
    (:func:`repro.sched.configure` / :func:`repro.sched.scheduled`), the
    feasible configs are executed through it — deduplicated, cache
    short-circuited and, with ``jobs > 1``, in parallel — with results
    bit-identical to this function's serial path.
    """
    from repro.sched import active_scheduler, validate_config

    valid: List[RunConfig] = []
    skipped = 0
    for cfg in configs:
        try:
            validate_config(cfg)
        except ValueError as exc:
            skipped += 1
            log.debug("sweep: skipping infeasible config: %s", exc)
            continue
        valid.append(cfg)
    if skipped:
        log.info(
            "sweep: skipped %d infeasible of %d configs",
            skipped, skipped + len(valid),
        )
    sched = active_scheduler()
    if sched is not None:
        results = sched.map(valid)
    else:
        results = [run(cfg) for cfg in valid]
    return SweepResults(results, skipped=skipped)


def _thickness_options(
    impl, impl_key: str, workload: str, thicknesses: Optional[Sequence[int]]
) -> Sequence[int]:
    # Box thickness is an advection-specific tuning axis (the Fig. 1 CPU
    # box); other workloads would reject (or worse, silently cache-split
    # on) non-default values.
    if workload != "advection":
        return (1,)
    if not impl.uses_gpu or not impl_key.startswith("hybrid"):
        return (1,)  # ignored by non-hybrid implementations
    return thicknesses if thicknesses is not None else DEFAULT_THICKNESSES


def tuning_configs(
    machine: MachineSpec,
    impl_key: str,
    cores: int,
    *,
    thicknesses: Optional[Sequence[int]] = None,
    thread_counts: Optional[Sequence[int]] = None,
    steps: int = 2,
    network: str = "mirror",
    workload: str = "advection",
    workload_params: Tuple[Tuple[str, object], ...] = (),
) -> List[RunConfig]:
    """The tuning cross-product for one (impl, cores) sweep point.

    Enumerates threads x thicknesses in a deterministic order (the same
    order :func:`best_over_threads` evaluates, so tie-breaking by ``max``
    is reproducible); combinations the config constructor itself rejects
    are dropped here, deeper feasibility is left to
    :func:`repro.sched.validate_config`.  Shared by ``best_over_threads``
    and the sweep CLI's ``--dry-run``/``--fabric`` paths.
    """
    impl = get_implementation(impl_key, workload=workload)
    threads = list(thread_counts if thread_counts is not None else
                   valid_thread_counts(machine, cores))
    if not impl.uses_mpi:
        # Single-task implementations use all requested cores as threads.
        threads = [cores] if cores <= machine.node.cores else []
    cfgs = []
    for t in threads:
        for thickness in _thickness_options(impl, impl_key, workload, thicknesses):
            try:
                cfgs.append(
                    RunConfig(
                        machine=machine,
                        implementation=impl_key,
                        cores=cores,
                        threads_per_task=t,
                        steps=steps,
                        box_thickness=thickness,
                        network=network,
                        workload=workload,
                        workload_params=workload_params,
                    )
                )
            except ValueError:
                continue
    return cfgs


def best_over_threads(
    machine: MachineSpec,
    impl_key: str,
    cores: int,
    *,
    thicknesses: Optional[Sequence[int]] = None,
    thread_counts: Optional[Sequence[int]] = None,
    steps: int = 2,
    network: str = "mirror",
    workload: str = "advection",
    workload_params: Tuple[Tuple[str, object], ...] = (),
) -> Optional[RunResult]:
    """Best result over the tuning space, like each point of Figs. 3-12.

    Returns ``None`` when no valid configuration exists (e.g. a single-task
    implementation asked for multiple nodes).
    """
    cfgs = tuning_configs(
        machine, impl_key, cores,
        thicknesses=thicknesses, thread_counts=thread_counts,
        steps=steps, network=network,
        workload=workload, workload_params=workload_params,
    )
    results = sweep_configs(cfgs)
    if not results:
        return None
    return max(results, key=lambda r: r.gflops)


def best_hybrid_config(
    machine: MachineSpec,
    cores: int,
    impl_key: str = "hybrid_overlap",
    thicknesses: Optional[Sequence[int]] = None,
    thread_counts: Optional[Sequence[int]] = None,
) -> Optional[RunResult]:
    """Best (threads, thickness) for a hybrid implementation (Figs. 11/12)."""
    return best_over_threads(
        machine,
        impl_key,
        cores,
        thicknesses=thicknesses,
        thread_counts=thread_counts,
    )
