"""Machine models for the paper's four test systems (Table II).

* :mod:`~repro.machines.spec` — dataclasses describing CPUs, nodes,
  interconnects, GPUs and whole machines, combining Table II's published
  specifications with calibrated effective-rate constants.
* :mod:`~repro.machines.cpu_model` — the roofline-style CPU timing model
  (flop rate vs memory bandwidth, OpenMP overheads, NUMA penalties).
* :mod:`~repro.machines.calibration` — every fitted constant in one place,
  with the anchor it was fitted against.
* :mod:`~repro.machines.catalog` — ``JAGUARPF``, ``HOPPER``, ``LENS``,
  ``YONA`` instances and lookup by name.
"""

from repro.machines.catalog import (
    A100_SXM,
    EFA_CLOUD,
    HOPPER,
    JAGUARPF,
    LENS,
    MACHINES,
    MILAN_SS11,
    YONA,
    get_machine,
)
from repro.machines.cpu_model import (
    memcpy_time,
    omp_region_overhead,
    task_compute_time,
    task_memory_bandwidth,
)
from repro.machines.spec import (
    GpuSpec,
    InterconnectSpec,
    MachineSpec,
    NodeSpec,
    ProgressModel,
    normalize_machine_name,
)

__all__ = [
    "A100_SXM",
    "EFA_CLOUD",
    "GpuSpec",
    "HOPPER",
    "InterconnectSpec",
    "JAGUARPF",
    "LENS",
    "MACHINES",
    "MILAN_SS11",
    "MachineSpec",
    "NodeSpec",
    "ProgressModel",
    "YONA",
    "get_machine",
    "normalize_machine_name",
    "memcpy_time",
    "omp_region_overhead",
    "task_compute_time",
    "task_memory_bandwidth",
]
