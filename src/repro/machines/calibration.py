"""Calibrated effective-rate constants, with provenance.

Everything here is a *fitted* constant: the paper reports results, not
microbenchmark rates, so we choose effective rates that (a) are physically
plausible for the 2010-era hardware in Table II and (b) reproduce the
paper's anchor numbers and shape findings. The anchors:

* §V-E single-node Yona: GPU-resident 86 GF; GPU + bulk MPI 24 GF; GPU +
  streams MPI 35 GF; CPU-GPU overlap 82 GF (thickness 3, 2 tasks/node).
* Fig. 8: best Yona block 32x8; Fig. 7: best Lens block 32x11.
* Fig. 3: nonblocking-overlap beats bulk below ~4000 cores on JaguarPF,
  loses at >= 6000; Fig. 4: the crossover is ~an order of magnitude higher
  on Hopper II.
* Figs. 5/6: best threads/task grows with core count; 24 never best.
* Fig. 10: best hybrid > 4x best CPU-only on Yona.

The decisive physical mechanism behind the §V-E anchor set (derived in
DESIGN.md §6): the per-face boundary kernels of the GPU+MPI implementations
(§IV-F/G) run nearly serially on a one-point-thick, non-coalesced slab and
are extremely slow (sub-GF), while the hybrid implementations replace them
with CPU wall computation and one large uniform GPU kernel. The
``face_kernel_gflops`` constants encode that mechanism.

Tests in ``tests/machines/test_calibration.py`` pin each anchor with a
tolerance band so refactoring cannot silently drift the calibration.
"""

from __future__ import annotations

__all__ = [
    "JAGUARPF_CAL",
    "HOPPER_CAL",
    "LENS_CAL",
    "YONA_CAL",
    "A100_CAL",
    "MILAN_CAL",
    "EFA_CAL",
]

# ---------------------------------------------------------------------------
# CPU-side constants common to the Opteron family. The stencil is a 27-point
# fused multiply-add chain; Opterons of this era sustain a modest fraction of
# SSE2 peak on it.
# ---------------------------------------------------------------------------
#: DRAM traffic per point for the stencil sweep (streamed read + write +
#: write-allocate, with the 3-plane working set caught in cache).
STENCIL_BYTES_PER_POINT = 32.0
#: DRAM traffic per point for the Step-3 state copy (read + write + RFO).
COPY_BYTES_PER_POINT = 24.0
#: Efficiency factor for boundary-shell loops (short, strided inner trips),
#: used by the overlap implementations that compute boundaries separately.
#: (Default; NodeSpec.boundary_loop_efficiency overrides per machine.)
BOUNDARY_LOOP_EFFICIENCY = 0.45
#: While the master thread communicates (§IV-D), its MPI-internal copies
#: contend with the worker threads for memory bandwidth; workers run at
#: this fraction of their normal rate during the communication window.
COMM_THREAD_INTERFERENCE = 0.60
#: Extra cost factor of OpenMP schedule(guided) relative to static (§IV-D).
GUIDED_SCHEDULE_OVERHEAD = 0.18
#: Efficiency of the CPU box-wall sweeps of §IV-H/I (chunky but still
#: shell-shaped loops; between full sweeps and the thin boundary shell).
WALL_COMPUTE_EFFICIENCY = 0.70


class _Cal(dict):
    """Typed-ish bag of per-machine calibration constants."""

    __getattr__ = dict.__getitem__


JAGUARPF_CAL = _Cal(
    # Istanbul, DDR2-800: ~10.6 GB/s/socket STREAM.
    numa_bandwidth_gbs=10.6,
    stencil_flop_efficiency=0.21,  # ~2.2 GF/core on Eq. 2
    memcpy_bandwidth_gbs=4.5,
    # SeaStar2+: high latency relative to Gemini; modest injection bandwidth.
    latency_us=7.0,
    bandwidth_gbs=1.7,
    per_message_cpu_us=1.6,
    # Portals RDMA moves rendezvous payloads without host attention once
    # the handshake completes, so a large fraction overlaps...
    overlap_fraction=0.70,
    # ...and SeaStar's eager path extends to fairly large messages, which
    # is what ends the overlap win as subdomains shrink (Fig. 3): eager
    # traffic is copied through MPI-internal buffers and cannot overlap.
    eager_threshold_bytes=24576,
)

HOPPER_CAL = _Cal(
    # Magny-Cours, DDR3-1333: ~12.5 GB/s per 6-core die.
    numa_bandwidth_gbs=12.5,
    stencil_flop_efficiency=0.21,
    memcpy_bandwidth_gbs=5.0,
    boundary_loop_efficiency=0.60,  # Magny-Cours prefetch handles the shell loops better
    # Gemini: much lower latency, much higher bandwidth than SeaStar2+.
    latency_us=1.6,
    bandwidth_gbs=3.0,
    per_message_cpu_us=0.9,
    # Gemini BTE offloads rendezvous transfers well...
    overlap_fraction=0.90,
    # ...but its SMSG eager path is small, so messages stay rendezvous (and
    # overlappable) to much higher core counts than on SeaStar — the
    # order-of-magnitude-later crossover of Fig. 4.
    eager_threshold_bytes=2048,
)

LENS_CAL = _Cal(
    # Barcelona, DDR2-667: the oldest, slowest CPUs of the four machines.
    numa_bandwidth_gbs=6.4,
    stencil_flop_efficiency=0.13,  # Barcelona SSE + older PGI codegen
    memcpy_bandwidth_gbs=3.2,
    # DDR InfiniBand through OpenMPI 1.3.
    latency_us=5.0,
    bandwidth_gbs=1.4,
    per_message_cpu_us=2.0,
    overlap_fraction=0.25,
    # Tesla C1060 (cc1.3): DP units are 1/8 of SP; strict coalescing rules.
    gpu_stencil_gflops=22.0,  # best-block rate of the resident kernel
    gpu_mem_bandwidth_gbs=73.0,  # effective streaming (102 nominal)
    face_kernel_gflops=0.22,  # x-perpendicular boundary-face kernels
    thin_slab_efficiency=0.30,  # thin uniform slabs (no cache, but no fused copies)
    pcie_bandwidth_gbs=1.5,  # pinned/async, older bus
    pcie_unpinned_gbs=0.6,  # synchronous pageable copies (§IV-F path)
    strided_copy_gbs=1.2,  # device-side x/y face pack kernels
    pcie_latency_us=20.0,
    kernel_launch_us=10.0,
)

YONA_CAL = _Cal(
    # Istanbul again on the host side.
    numa_bandwidth_gbs=10.6,
    stencil_flop_efficiency=0.20,  # slightly below JaguarPF (OpenMPI + prerelease stack)
    memcpy_bandwidth_gbs=4.5,
    # QDR InfiniBand, OpenMPI 1.7a1.
    latency_us=2.5,
    bandwidth_gbs=3.0,
    per_message_cpu_us=1.2,
    overlap_fraction=0.30,
    # Tesla C2050 (Fermi, cc2.0): calibrated so the resident kernel delivers
    # the paper's 86 GF at the 32x8 block (Fig. 8) — 16.7% of the 515 GF
    # DP peak, a typical Fermi DP stencil fraction with ECC enabled.
    gpu_stencil_gflops=86.0,
    gpu_mem_bandwidth_gbs=105.0,  # ECC-on effective (144 nominal)
    face_kernel_gflops=0.42,  # x-perpendicular boundary-face kernels
    thin_slab_efficiency=0.16,  # thin uniform slabs (block boundary layer)
    pcie_bandwidth_gbs=4.0,  # the "faster PCIe bus" of §III (pinned/async)
    pcie_unpinned_gbs=0.55,  # synchronous pageable copies (§IV-F path)
    strided_copy_gbs=2.0,  # device-side x/y face pack kernels
    pcie_latency_us=10.0,
    kernel_launch_us=7.0,
)

# ---------------------------------------------------------------------------
# Modern machines (ROADMAP item 3: "would the paper's conclusions flip on an
# A100-class node?").  These are *projections*, not paper anchors: rates come
# from vendor datasheets and public benchmark folklore for the 2020-23
# hardware generation, chosen with the same conventions as the four paper
# machines (effective streaming rates, not nominal peaks).  The progress
# model and GPU-aware comm fields are what the scenario study varies.
# ---------------------------------------------------------------------------

A100_CAL = _Cal(
    # EPYC 7763 host: DDR4-3200, 8 channels/socket, NPS4 (~42 GB/s/die).
    numa_bandwidth_gbs=40.0,
    stencil_flop_efficiency=0.08,  # memory-bound on AVX2 FMA peaks
    memcpy_bandwidth_gbs=25.0,
    # Slingshot-11 class NIC: 200 Gb/s, sub-2us, full hardware offload.
    latency_us=1.8,
    bandwidth_gbs=23.0,
    per_message_cpu_us=0.2,
    overlap_fraction=0.90,  # manual-poll counterfactual; HW offload ignores it
    eager_threshold_bytes=4096,
    # A100-SXM4: 1555 GB/s nominal HBM2e, ~1400 effective with ECC.
    gpu_stencil_gflops=1050.0,
    gpu_mem_bandwidth_gbs=1400.0,
    face_kernel_gflops=35.0,  # thin kernels no longer fall off a cliff
    thin_slab_efficiency=0.30,
    pcie_bandwidth_gbs=22.0,  # PCIe4 x16 pinned/async
    pcie_unpinned_gbs=6.0,
    strided_copy_gbs=300.0,  # device-side pack kernels ride HBM
    pcie_latency_us=5.0,
    kernel_launch_us=4.0,
    # NVLink3 through NVSwitch: ~600 GB/s/GPU nominal; effective fair-share
    # per node modeled as one 250 GB/s link all peer copies contend on.
    nvlink_bandwidth_gbs=250.0,
    nvlink_latency_us=1.8,
)

MILAN_CAL = _Cal(
    # Same EPYC 7763 host as the A100 node, CPU-only partition.
    numa_bandwidth_gbs=40.0,
    stencil_flop_efficiency=0.08,
    memcpy_bandwidth_gbs=25.0,
    # Slingshot-11 again.
    latency_us=1.8,
    bandwidth_gbs=23.0,
    per_message_cpu_us=0.2,
    overlap_fraction=0.90,
    eager_threshold_bytes=4096,
)

EFA_CAL = _Cal(
    # Cloud Xeon host (Cascade Lake-class): DDR4-2933, 6 channels/socket.
    numa_bandwidth_gbs=30.0,
    stencil_flop_efficiency=0.07,
    memcpy_bandwidth_gbs=18.0,
    # EFA-class NIC: SRD over commodity ethernet — high latency, decent
    # bandwidth, progress driven by a libfabric software engine.
    latency_us=18.0,
    bandwidth_gbs=12.0,
    per_message_cpu_us=0.5,
    overlap_fraction=0.30,  # manual-poll counterfactual
    eager_threshold_bytes=8192,
    progress_overlap_fraction=0.90,
    progress_host_tax=0.08,  # the polling thread steals real cycles
)
