"""CPU-side timing model: roofline compute, OpenMP overheads, copies.

The model answers one question for the implementations' timed programs:
*how long does a task with ``t`` OpenMP threads take to sweep ``n`` points
(or copy ``b`` bytes)?* It is a max-of-rooflines:

* flop term — ``t`` cores at the calibrated achieved fraction of SSE2 peak;
* memory term — the task's share of its NUMA domains' streaming bandwidth,
  with a penalty when one task spans several NUMA domains (remote first
  touch), which is what makes 24 threads/task on Hopper II never optimal
  (paper §V-B);

plus an OpenMP parallel-region overhead per sweep. Nodes are assumed fully
packed (threads_per_task x tasks_per_node == cores), which holds for every
experiment in the paper.
"""

from __future__ import annotations

import math

from repro.machines.calibration import (
    BOUNDARY_LOOP_EFFICIENCY,
    COPY_BYTES_PER_POINT,
    GUIDED_SCHEDULE_OVERHEAD,
    STENCIL_BYTES_PER_POINT,
)
from repro.machines.spec import NodeSpec
from repro.stencil.coefficients import FLOPS_PER_POINT

__all__ = [
    "task_memory_bandwidth",
    "omp_region_overhead",
    "task_compute_time",
    "memcpy_time",
    "boundary_compute_time",
    "copy_state_time",
]


def task_memory_bandwidth(node: NodeSpec, threads: int) -> float:
    """Streaming bandwidth (B/s) available to one task with ``threads`` threads.

    Each core gets its proportional share of its NUMA domain's bandwidth
    (the node is fully packed); a task spanning ``k`` NUMA domains loses a
    ``numa_remote_penalty`` factor per extra domain because its arrays are
    first-touched on one domain.
    """
    if threads < 1:
        raise ValueError("threads must be >= 1")
    per_core = node.numa_bandwidth_gbs * 1e9 / node.cores_per_numa
    spanned = math.ceil(threads / node.cores_per_numa)
    penalty = node.numa_remote_penalty ** max(0, spanned - 1)
    return threads * per_core * penalty


def omp_region_overhead(node: NodeSpec, threads: int) -> float:
    """Fork/join + barrier cost (s) of one OpenMP parallel region."""
    if threads <= 1:
        return 0.0
    return (node.omp_region_overhead_us + node.omp_per_thread_overhead_us * threads) * 1e-6


def task_compute_time(
    node: NodeSpec,
    threads: int,
    points: int,
    *,
    bytes_per_point: float = STENCIL_BYTES_PER_POINT,
    flops_per_point: float = FLOPS_PER_POINT,
    efficiency: float = 1.0,
    guided: bool = False,
    region_overhead: bool = True,
) -> float:
    """Seconds for one task to sweep ``points`` stencil points.

    ``efficiency`` scales the flop rate (used for strided boundary loops);
    ``guided`` applies the schedule(guided) overhead of §IV-D.
    """
    if points <= 0:
        return 0.0
    omp_eff = 1.0 / (1.0 + node.omp_parallel_inefficiency * (threads - 1))
    flop_rate = (
        threads
        * node.peak_gflops_per_core
        * 1e9
        * node.stencil_flop_efficiency
        * efficiency
        * omp_eff
    )
    mem_rate = task_memory_bandwidth(node, threads) * efficiency
    t = max(points * flops_per_point / flop_rate, points * bytes_per_point / mem_rate)
    if guided:
        t *= 1.0 + GUIDED_SCHEDULE_OVERHEAD
    if region_overhead:
        t += omp_region_overhead(node, threads)
    return t


def boundary_compute_time(node: NodeSpec, threads: int, points: int) -> float:
    """Sweep time for boundary-shell points (short strided loops, §IV-C/D)."""
    return task_compute_time(
        node, threads, points, efficiency=BOUNDARY_LOOP_EFFICIENCY
    )


def copy_state_time(node: NodeSpec, threads: int, points: int) -> float:
    """Step 3 of §IV-A: copy the new state over the current state."""
    return task_compute_time(
        node,
        threads,
        points,
        bytes_per_point=COPY_BYTES_PER_POINT,
        flops_per_point=0.25,  # effectively pure data movement
    )


def memcpy_time(node: NodeSpec, nbytes: int, threads: int = 1, stride_penalty: float = 1.0) -> float:
    """Seconds to copy ``nbytes`` on-node (halo pack/unpack, send buffers).

    Parallelizes over threads up to half the task's streaming bandwidth
    (copies move 2 bytes of traffic per byte copied). ``stride_penalty`` < 1
    models strided gathers (e.g. packing x faces of a z-contiguous array).
    """
    if nbytes <= 0:
        return 0.0
    rate = min(
        node.memcpy_bandwidth_gbs * 1e9 * threads,
        task_memory_bandwidth(node, threads) / 2.0,
    )
    return nbytes / (rate * stride_penalty)
