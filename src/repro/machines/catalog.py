"""The machine catalog: Table II's four test machines plus modern scenarios.

Published fields of the paper machines come straight from Table II;
effective rates come from :mod:`repro.machines.calibration`.  The modern
entries (A100-SXM, Milan-SS11, EFA-Cloud) are datasheet projections that
exercise the progress-model and GPU-aware comm axes (ROADMAP item 3).
"""

from __future__ import annotations

from typing import Dict

from repro.machines.calibration import (
    A100_CAL,
    EFA_CAL,
    HOPPER_CAL,
    JAGUARPF_CAL,
    LENS_CAL,
    MILAN_CAL,
    YONA_CAL,
)
from repro.machines.spec import (
    GpuSpec,
    InterconnectSpec,
    MachineSpec,
    NodeSpec,
    ProgressModel,
    normalize_machine_name,
)

__all__ = [
    "JAGUARPF",
    "HOPPER",
    "LENS",
    "YONA",
    "A100_SXM",
    "MILAN_SS11",
    "EFA_CLOUD",
    "MACHINES",
    "get_machine",
]


JAGUARPF = MachineSpec(
    name="JaguarPF",
    compute_nodes=18688,
    node=NodeSpec(
        sockets=2,
        cores_per_socket=6,
        clock_ghz=2.6,
        memory_gb=16,
        numa_domains_per_socket=1,
        stencil_flop_efficiency=JAGUARPF_CAL.stencil_flop_efficiency,
        numa_bandwidth_gbs=JAGUARPF_CAL.numa_bandwidth_gbs,
        memcpy_bandwidth_gbs=JAGUARPF_CAL.memcpy_bandwidth_gbs,
    ),
    interconnect=InterconnectSpec(
        name="Cray SeaStar 2+",
        mpi_name="Cray MPT 4.0.0",
        latency_us=JAGUARPF_CAL.latency_us,
        bandwidth_gbs=JAGUARPF_CAL.bandwidth_gbs,
        per_message_cpu_us=JAGUARPF_CAL.per_message_cpu_us,
        overlap_fraction=JAGUARPF_CAL.overlap_fraction,
        eager_threshold_bytes=JAGUARPF_CAL.eager_threshold_bytes,
    ),
    thread_options=(1, 2, 3, 6, 12),
    figure_core_counts=(12, 48, 192, 768, 1536, 3072, 6144, 12288),
)


HOPPER = MachineSpec(
    name="Hopper II",
    compute_nodes=6392,
    node=NodeSpec(
        sockets=2,
        cores_per_socket=12,
        clock_ghz=2.1,
        memory_gb=32,
        numa_domains_per_socket=2,  # each Magny-Cours socket is two 6-core dies
        stencil_flop_efficiency=HOPPER_CAL.stencil_flop_efficiency,
        numa_bandwidth_gbs=HOPPER_CAL.numa_bandwidth_gbs,
        memcpy_bandwidth_gbs=HOPPER_CAL.memcpy_bandwidth_gbs,
        boundary_loop_efficiency=HOPPER_CAL.boundary_loop_efficiency,
    ),
    interconnect=InterconnectSpec(
        name="Cray Gemini",
        mpi_name="Cray MPT 5.1.3",
        latency_us=HOPPER_CAL.latency_us,
        bandwidth_gbs=HOPPER_CAL.bandwidth_gbs,
        per_message_cpu_us=HOPPER_CAL.per_message_cpu_us,
        overlap_fraction=HOPPER_CAL.overlap_fraction,
        eager_threshold_bytes=HOPPER_CAL.eager_threshold_bytes,
    ),
    thread_options=(1, 2, 3, 6, 12, 24),
    figure_core_counts=(24, 96, 384, 1536, 6144, 12288, 24576, 49152),
)


LENS = MachineSpec(
    name="Lens",
    compute_nodes=31,
    node=NodeSpec(
        sockets=4,
        cores_per_socket=4,
        clock_ghz=2.3,
        memory_gb=64,
        numa_domains_per_socket=1,
        stencil_flop_efficiency=LENS_CAL.stencil_flop_efficiency,
        numa_bandwidth_gbs=LENS_CAL.numa_bandwidth_gbs,
        memcpy_bandwidth_gbs=LENS_CAL.memcpy_bandwidth_gbs,
    ),
    interconnect=InterconnectSpec(
        name="DDR Infiniband",
        mpi_name="OpenMPI 1.3.3",
        latency_us=LENS_CAL.latency_us,
        bandwidth_gbs=LENS_CAL.bandwidth_gbs,
        per_message_cpu_us=LENS_CAL.per_message_cpu_us,
        overlap_fraction=LENS_CAL.overlap_fraction,
    ),
    gpu=GpuSpec(
        name="Tesla C1060",
        memory_gb=4,
        sm_count=30,
        warp_size=32,
        max_threads_per_block=512,  # §V-C: "block sizes of up to 512 elements"
        max_threads_per_sm=1024,
        max_blocks_per_sm=8,
        shared_mem_per_sm_kb=16.0,
        dp_peak_gflops=78.0,
        mem_bandwidth_gbs=LENS_CAL.gpu_mem_bandwidth_gbs,
        pcie_bandwidth_gbs=LENS_CAL.pcie_bandwidth_gbs,
        pcie_unpinned_gbs=LENS_CAL.pcie_unpinned_gbs,
        strided_copy_gbs=LENS_CAL.strided_copy_gbs,
        pcie_latency_us=LENS_CAL.pcie_latency_us,
        copy_engines=1,
        concurrent_kernels=False,
        kernel_launch_us=LENS_CAL.kernel_launch_us,
        stencil_gflops_best=LENS_CAL.gpu_stencil_gflops,
        face_kernel_gflops=LENS_CAL.face_kernel_gflops,
        thin_slab_efficiency=LENS_CAL.thin_slab_efficiency,
        register_file_size=16384,  # cc1.3: 16K registers per SM
        regs_per_thread=20,
        by_sweet_spot=11.0,  # Fig. 7: best block is 32x11
        by_sweet_amp=0.35,
        by_sweet_tol=1.2,
    ),
    gpus_per_node=1,
    thread_options=(1, 2, 4, 8, 16),
    figure_core_counts=(16, 32, 64, 128, 256, 496),
)


YONA = MachineSpec(
    name="Yona",
    compute_nodes=16,
    node=NodeSpec(
        sockets=2,
        cores_per_socket=6,
        clock_ghz=2.6,
        memory_gb=32,
        numa_domains_per_socket=1,
        stencil_flop_efficiency=YONA_CAL.stencil_flop_efficiency,
        numa_bandwidth_gbs=YONA_CAL.numa_bandwidth_gbs,
        memcpy_bandwidth_gbs=YONA_CAL.memcpy_bandwidth_gbs,
    ),
    interconnect=InterconnectSpec(
        name="QDR Infiniband",
        mpi_name="OpenMPI 1.7a1",
        latency_us=YONA_CAL.latency_us,
        bandwidth_gbs=YONA_CAL.bandwidth_gbs,
        per_message_cpu_us=YONA_CAL.per_message_cpu_us,
        overlap_fraction=YONA_CAL.overlap_fraction,
    ),
    gpu=GpuSpec(
        name="Tesla C2050",
        memory_gb=3,
        sm_count=14,
        warp_size=32,
        max_threads_per_block=1024,  # §V-C: "block sizes of up to 1024 elements"
        max_threads_per_sm=1536,
        max_blocks_per_sm=8,
        shared_mem_per_sm_kb=48.0,
        dp_peak_gflops=515.0,
        mem_bandwidth_gbs=YONA_CAL.gpu_mem_bandwidth_gbs,
        pcie_bandwidth_gbs=YONA_CAL.pcie_bandwidth_gbs,
        pcie_unpinned_gbs=YONA_CAL.pcie_unpinned_gbs,
        strided_copy_gbs=YONA_CAL.strided_copy_gbs,
        pcie_latency_us=YONA_CAL.pcie_latency_us,
        copy_engines=2,
        concurrent_kernels=False,  # see GpuSpec.concurrent_kernels
        kernel_launch_us=YONA_CAL.kernel_launch_us,
        stencil_gflops_best=YONA_CAL.gpu_stencil_gflops,
        face_kernel_gflops=YONA_CAL.face_kernel_gflops,
        thin_slab_efficiency=YONA_CAL.thin_slab_efficiency,
        register_file_size=32768,  # cc2.0: 32K registers per SM
        regs_per_thread=20,
        by_sweet_spot=8.0,  # Fig. 8: best block is 32x8
        by_sweet_amp=0.35,
        by_sweet_tol=1.2,
    ),
    gpus_per_node=1,
    thread_options=(1, 2, 3, 6, 12),
    figure_core_counts=(12, 24, 48, 96, 192),
)


# ---------------------------------------------------------------------------
# Modern scenario machines (not in the paper). See calibration.py for the
# provenance of every rate. Hyphenated names deliberately exercise the
# shared key normalization below.
# ---------------------------------------------------------------------------

#: EPYC 7763 host shared by the two Slingshot machines (NPS4: 4 dies/socket).
_MILAN_NODE = NodeSpec(
    sockets=2,
    cores_per_socket=64,
    clock_ghz=2.45,
    memory_gb=512,
    numa_domains_per_socket=4,
    flops_per_cycle=16.0,  # AVX2 FMA: 2 pipes x 4 lanes x 2 flops
    stencil_flop_efficiency=MILAN_CAL.stencil_flop_efficiency,
    numa_bandwidth_gbs=MILAN_CAL.numa_bandwidth_gbs,
    memcpy_bandwidth_gbs=MILAN_CAL.memcpy_bandwidth_gbs,
    omp_region_overhead_us=1.5,
    boundary_loop_efficiency=0.60,
)

#: Slingshot-11-class fabric: full NIC-resident progress, GPU-aware RDMA.
_SS11 = dict(
    name="Slingshot 11",
    mpi_name="Cray MPICH 8.1",
    latency_us=MILAN_CAL.latency_us,
    bandwidth_gbs=MILAN_CAL.bandwidth_gbs,
    per_message_cpu_us=MILAN_CAL.per_message_cpu_us,
    overlap_fraction=MILAN_CAL.overlap_fraction,
    eager_threshold_bytes=MILAN_CAL.eager_threshold_bytes,
    progress=ProgressModel.HARDWARE_OFFLOAD,
)

A100_SXM = MachineSpec(
    name="A100-SXM",
    compute_nodes=1024,
    node=_MILAN_NODE,
    interconnect=InterconnectSpec(**{**_SS11, "nics_per_node": 4, "gpudirect": True}),
    gpu=GpuSpec(
        name="A100-SXM4-80GB",
        memory_gb=80,
        sm_count=108,
        warp_size=32,
        max_threads_per_block=1024,
        max_threads_per_sm=2048,
        max_blocks_per_sm=32,
        shared_mem_per_sm_kb=164.0,
        dp_peak_gflops=9700.0,
        mem_bandwidth_gbs=A100_CAL.gpu_mem_bandwidth_gbs,
        pcie_bandwidth_gbs=A100_CAL.pcie_bandwidth_gbs,
        pcie_unpinned_gbs=A100_CAL.pcie_unpinned_gbs,
        strided_copy_gbs=A100_CAL.strided_copy_gbs,
        pcie_latency_us=A100_CAL.pcie_latency_us,
        copy_engines=2,
        concurrent_kernels=True,  # Ampere overlaps independent kernels for real
        kernel_launch_us=A100_CAL.kernel_launch_us,
        stencil_gflops_best=A100_CAL.gpu_stencil_gflops,
        face_kernel_gflops=A100_CAL.face_kernel_gflops,
        thin_slab_efficiency=A100_CAL.thin_slab_efficiency,
        register_file_size=65536,
        regs_per_thread=32,
        by_sweet_spot=8.0,  # far flatter than Fermi: occupancy dominates
        by_sweet_amp=0.10,
        by_sweet_tol=8.0,
        nvlink_bandwidth_gbs=A100_CAL.nvlink_bandwidth_gbs,
        nvlink_latency_us=A100_CAL.nvlink_latency_us,
    ),
    gpus_per_node=4,
    thread_options=(1, 2, 4, 8, 16, 32),
    figure_core_counts=(128, 256, 512, 1024, 2048, 4096),
)

MILAN_SS11 = MachineSpec(
    name="Milan-SS11",
    compute_nodes=1536,
    node=_MILAN_NODE,
    interconnect=InterconnectSpec(**_SS11),
    thread_options=(1, 2, 4, 8, 16, 32, 64, 128),
    figure_core_counts=(128, 512, 2048, 8192, 32768),
)

EFA_CLOUD = MachineSpec(
    name="EFA-Cloud",
    compute_nodes=256,
    node=NodeSpec(
        sockets=2,
        cores_per_socket=24,
        clock_ghz=3.0,
        memory_gb=384,
        numa_domains_per_socket=1,
        flops_per_cycle=16.0,
        stencil_flop_efficiency=EFA_CAL.stencil_flop_efficiency,
        numa_bandwidth_gbs=EFA_CAL.numa_bandwidth_gbs,
        memcpy_bandwidth_gbs=EFA_CAL.memcpy_bandwidth_gbs,
        omp_region_overhead_us=2.0,
        boundary_loop_efficiency=0.55,
    ),
    interconnect=InterconnectSpec(
        name="EFA 100G x4",
        mpi_name="OpenMPI 4.1 + libfabric",
        latency_us=EFA_CAL.latency_us,
        bandwidth_gbs=EFA_CAL.bandwidth_gbs,
        per_message_cpu_us=EFA_CAL.per_message_cpu_us,
        overlap_fraction=EFA_CAL.overlap_fraction,
        eager_threshold_bytes=EFA_CAL.eager_threshold_bytes,
        progress=ProgressModel.PROGRESS_THREAD,
        progress_overlap_fraction=EFA_CAL.progress_overlap_fraction,
        progress_host_tax=EFA_CAL.progress_host_tax,
        nics_per_node=4,
    ),
    thread_options=(1, 2, 4, 8, 12, 24, 48),
    figure_core_counts=(48, 192, 768, 3072),
)


MACHINES: Dict[str, MachineSpec] = {
    normalize_machine_name(m.name): m
    for m in (JAGUARPF, HOPPER, LENS, YONA, A100_SXM, MILAN_SS11, EFA_CLOUD)
}
# Convenience aliases.
MACHINES["jaguar"] = JAGUARPF
MACHINES["hopper"] = HOPPER
MACHINES["a100"] = A100_SXM
MACHINES["milan"] = MILAN_SS11
MACHINES["efa"] = EFA_CLOUD


def get_machine(name: str) -> MachineSpec:
    """Look up a machine by (case/space/hyphen-insensitive) name.

    Registration and lookup share :func:`normalize_machine_name`; they
    used to normalize differently (registration stripped only spaces),
    which made any hyphenated catalog name permanently unresolvable.
    """
    key = normalize_machine_name(name)
    if key not in MACHINES:
        raise KeyError(f"unknown machine {name!r}; known: {sorted(MACHINES)}")
    return MACHINES[key]


# Precompute cache-key canonical forms for the whole registry: a machine
# spec is by far the largest part of a config's cache document, and every
# sweep config references one of these four instances, so warming here
# makes the first config_key of any sweep as cheap as the millionth.
from repro.cache import warm_machine_digests  # noqa: E402  (after registry)

warm_machine_digests(set(MACHINES.values()))
