"""The four test machines of Table II, as :class:`MachineSpec` instances.

Published fields come straight from Table II; effective rates come from
:mod:`repro.machines.calibration`.
"""

from __future__ import annotations

from typing import Dict

from repro.machines.calibration import HOPPER_CAL, JAGUARPF_CAL, LENS_CAL, YONA_CAL
from repro.machines.spec import GpuSpec, InterconnectSpec, MachineSpec, NodeSpec

__all__ = ["JAGUARPF", "HOPPER", "LENS", "YONA", "MACHINES", "get_machine"]


JAGUARPF = MachineSpec(
    name="JaguarPF",
    compute_nodes=18688,
    node=NodeSpec(
        sockets=2,
        cores_per_socket=6,
        clock_ghz=2.6,
        memory_gb=16,
        numa_domains_per_socket=1,
        stencil_flop_efficiency=JAGUARPF_CAL.stencil_flop_efficiency,
        numa_bandwidth_gbs=JAGUARPF_CAL.numa_bandwidth_gbs,
        memcpy_bandwidth_gbs=JAGUARPF_CAL.memcpy_bandwidth_gbs,
    ),
    interconnect=InterconnectSpec(
        name="Cray SeaStar 2+",
        mpi_name="Cray MPT 4.0.0",
        latency_us=JAGUARPF_CAL.latency_us,
        bandwidth_gbs=JAGUARPF_CAL.bandwidth_gbs,
        per_message_cpu_us=JAGUARPF_CAL.per_message_cpu_us,
        overlap_fraction=JAGUARPF_CAL.overlap_fraction,
        eager_threshold_bytes=JAGUARPF_CAL.eager_threshold_bytes,
    ),
    thread_options=(1, 2, 3, 6, 12),
    figure_core_counts=(12, 48, 192, 768, 1536, 3072, 6144, 12288),
)


HOPPER = MachineSpec(
    name="Hopper II",
    compute_nodes=6392,
    node=NodeSpec(
        sockets=2,
        cores_per_socket=12,
        clock_ghz=2.1,
        memory_gb=32,
        numa_domains_per_socket=2,  # each Magny-Cours socket is two 6-core dies
        stencil_flop_efficiency=HOPPER_CAL.stencil_flop_efficiency,
        numa_bandwidth_gbs=HOPPER_CAL.numa_bandwidth_gbs,
        memcpy_bandwidth_gbs=HOPPER_CAL.memcpy_bandwidth_gbs,
        boundary_loop_efficiency=HOPPER_CAL.boundary_loop_efficiency,
    ),
    interconnect=InterconnectSpec(
        name="Cray Gemini",
        mpi_name="Cray MPT 5.1.3",
        latency_us=HOPPER_CAL.latency_us,
        bandwidth_gbs=HOPPER_CAL.bandwidth_gbs,
        per_message_cpu_us=HOPPER_CAL.per_message_cpu_us,
        overlap_fraction=HOPPER_CAL.overlap_fraction,
        eager_threshold_bytes=HOPPER_CAL.eager_threshold_bytes,
    ),
    thread_options=(1, 2, 3, 6, 12, 24),
    figure_core_counts=(24, 96, 384, 1536, 6144, 12288, 24576, 49152),
)


LENS = MachineSpec(
    name="Lens",
    compute_nodes=31,
    node=NodeSpec(
        sockets=4,
        cores_per_socket=4,
        clock_ghz=2.3,
        memory_gb=64,
        numa_domains_per_socket=1,
        stencil_flop_efficiency=LENS_CAL.stencil_flop_efficiency,
        numa_bandwidth_gbs=LENS_CAL.numa_bandwidth_gbs,
        memcpy_bandwidth_gbs=LENS_CAL.memcpy_bandwidth_gbs,
    ),
    interconnect=InterconnectSpec(
        name="DDR Infiniband",
        mpi_name="OpenMPI 1.3.3",
        latency_us=LENS_CAL.latency_us,
        bandwidth_gbs=LENS_CAL.bandwidth_gbs,
        per_message_cpu_us=LENS_CAL.per_message_cpu_us,
        overlap_fraction=LENS_CAL.overlap_fraction,
    ),
    gpu=GpuSpec(
        name="Tesla C1060",
        memory_gb=4,
        sm_count=30,
        warp_size=32,
        max_threads_per_block=512,  # §V-C: "block sizes of up to 512 elements"
        max_threads_per_sm=1024,
        max_blocks_per_sm=8,
        shared_mem_per_sm_kb=16.0,
        dp_peak_gflops=78.0,
        mem_bandwidth_gbs=LENS_CAL.gpu_mem_bandwidth_gbs,
        pcie_bandwidth_gbs=LENS_CAL.pcie_bandwidth_gbs,
        pcie_unpinned_gbs=LENS_CAL.pcie_unpinned_gbs,
        strided_copy_gbs=LENS_CAL.strided_copy_gbs,
        pcie_latency_us=LENS_CAL.pcie_latency_us,
        copy_engines=1,
        concurrent_kernels=False,
        kernel_launch_us=LENS_CAL.kernel_launch_us,
        stencil_gflops_best=LENS_CAL.gpu_stencil_gflops,
        face_kernel_gflops=LENS_CAL.face_kernel_gflops,
        thin_slab_efficiency=LENS_CAL.thin_slab_efficiency,
        register_file_size=16384,  # cc1.3: 16K registers per SM
        regs_per_thread=20,
        by_sweet_spot=11.0,  # Fig. 7: best block is 32x11
        by_sweet_amp=0.35,
        by_sweet_tol=1.2,
    ),
    gpus_per_node=1,
    thread_options=(1, 2, 4, 8, 16),
    figure_core_counts=(16, 32, 64, 128, 256, 496),
)


YONA = MachineSpec(
    name="Yona",
    compute_nodes=16,
    node=NodeSpec(
        sockets=2,
        cores_per_socket=6,
        clock_ghz=2.6,
        memory_gb=32,
        numa_domains_per_socket=1,
        stencil_flop_efficiency=YONA_CAL.stencil_flop_efficiency,
        numa_bandwidth_gbs=YONA_CAL.numa_bandwidth_gbs,
        memcpy_bandwidth_gbs=YONA_CAL.memcpy_bandwidth_gbs,
    ),
    interconnect=InterconnectSpec(
        name="QDR Infiniband",
        mpi_name="OpenMPI 1.7a1",
        latency_us=YONA_CAL.latency_us,
        bandwidth_gbs=YONA_CAL.bandwidth_gbs,
        per_message_cpu_us=YONA_CAL.per_message_cpu_us,
        overlap_fraction=YONA_CAL.overlap_fraction,
    ),
    gpu=GpuSpec(
        name="Tesla C2050",
        memory_gb=3,
        sm_count=14,
        warp_size=32,
        max_threads_per_block=1024,  # §V-C: "block sizes of up to 1024 elements"
        max_threads_per_sm=1536,
        max_blocks_per_sm=8,
        shared_mem_per_sm_kb=48.0,
        dp_peak_gflops=515.0,
        mem_bandwidth_gbs=YONA_CAL.gpu_mem_bandwidth_gbs,
        pcie_bandwidth_gbs=YONA_CAL.pcie_bandwidth_gbs,
        pcie_unpinned_gbs=YONA_CAL.pcie_unpinned_gbs,
        strided_copy_gbs=YONA_CAL.strided_copy_gbs,
        pcie_latency_us=YONA_CAL.pcie_latency_us,
        copy_engines=2,
        concurrent_kernels=False,  # see GpuSpec.concurrent_kernels
        kernel_launch_us=YONA_CAL.kernel_launch_us,
        stencil_gflops_best=YONA_CAL.gpu_stencil_gflops,
        face_kernel_gflops=YONA_CAL.face_kernel_gflops,
        thin_slab_efficiency=YONA_CAL.thin_slab_efficiency,
        register_file_size=32768,  # cc2.0: 32K registers per SM
        regs_per_thread=20,
        by_sweet_spot=8.0,  # Fig. 8: best block is 32x8
        by_sweet_amp=0.35,
        by_sweet_tol=1.2,
    ),
    gpus_per_node=1,
    thread_options=(1, 2, 3, 6, 12),
    figure_core_counts=(12, 24, 48, 96, 192),
)


MACHINES: Dict[str, MachineSpec] = {
    m.name.lower().replace(" ", ""): m for m in (JAGUARPF, HOPPER, LENS, YONA)
}
# Convenience aliases.
MACHINES["jaguar"] = JAGUARPF
MACHINES["hopper"] = HOPPER


def get_machine(name: str) -> MachineSpec:
    """Look up a machine by (case/space-insensitive) name."""
    key = name.lower().replace(" ", "").replace("-", "")
    if key not in MACHINES:
        raise KeyError(f"unknown machine {name!r}; known: {sorted(MACHINES)}")
    return MACHINES[key]


# Precompute cache-key canonical forms for the whole registry: a machine
# spec is by far the largest part of a config's cache document, and every
# sweep config references one of these four instances, so warming here
# makes the first config_key of any sweep as cheap as the millionth.
from repro.cache import warm_machine_digests  # noqa: E402  (after registry)

warm_machine_digests(set(MACHINES.values()))
