"""Hardware specification dataclasses.

Fields marked "Table II" are transcribed from the paper; fields marked
"calibrated" are effective rates fitted to the paper's reported results
(see :mod:`repro.machines.calibration` for values and provenance).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple

__all__ = [
    "ProgressModel",
    "NodeSpec",
    "InterconnectSpec",
    "GpuSpec",
    "MachineSpec",
    "normalize_machine_name",
]


def normalize_machine_name(name: str) -> str:
    """Canonical lookup key for a machine name.

    Lowercased with spaces and hyphens stripped, so ``"A100-SXM"``,
    ``"a100 sxm"`` and ``"A100SXM"`` all address the same catalog entry.
    Used by both the catalog registration and every lookup path
    (:func:`repro.machines.catalog.get_machine`,
    :meth:`repro.perturb.NoiseSpec.for_machine`) — keeping registration
    and lookup normalization identical is what makes hyphenated names
    resolvable at all.
    """
    return name.lower().replace(" ", "").replace("-", "")


class ProgressModel(str, enum.Enum):
    """How the MPI library progresses wire traffic while the host computes.

    The paper's libraries (Cray MPT, OpenMPI circa 2011) progress mostly
    *inside* MPI calls: a nonblocking transfer advances only by the
    calibrated ``overlap_fraction`` between post and wait, and eager
    messages not at all (the receiver must enter the library to drain
    them).  That behaviour is ``MANUAL_POLL``, the default, and is
    bit-identical to the model before progress models existed.

    ``PROGRESS_THREAD`` models a software progress engine (a dedicated
    helper thread or "MPI progress for all"-style continuations): nearly
    all wire time advances in the background — eager and rendezvous alike
    — but the polling thread steals host cycles, charged as a fractional
    tax on host compute (``progress_host_tax``).

    ``HARDWARE_OFFLOAD`` models NIC-resident progress (Slingshot/EFA/
    Portals-class hardware with full offload): every posted byte moves at
    wire rate regardless of what the host is doing, at no host cost.
    """

    MANUAL_POLL = "manual-poll"
    PROGRESS_THREAD = "progress-thread"
    HARDWARE_OFFLOAD = "hardware-offload"


@dataclass(frozen=True)
class NodeSpec:
    """One compute node's CPU side."""

    sockets: int  # Table II: AMD Opteron sockets per node
    cores_per_socket: int  # Table II
    clock_ghz: float  # Table II: Opteron clock
    memory_gb: float  # Table II: memory per node
    numa_domains_per_socket: int = 1  # 2 for Magny-Cours (two 6-core dies)
    flops_per_cycle: float = 4.0  # SSE2 double precision: 2 mul + 2 add
    # calibrated:
    stencil_flop_efficiency: float = 0.16  # achieved fraction of peak on Eq. 2
    numa_bandwidth_gbs: float = 10.0  # streaming GB/s per NUMA domain
    numa_remote_penalty: float = 0.82  # bandwidth factor per extra NUMA domain spanned
    memcpy_bandwidth_gbs: float = 5.0  # single large on-node copy
    omp_region_overhead_us: float = 3.0  # fork/join + static-schedule barrier
    omp_per_thread_overhead_us: float = 0.25  # added per participating thread
    # calibrated: per-extra-thread loss of parallel efficiency (collapse(2)
    # imbalance, shared-cache interference); what makes pure-MPI (1 thread)
    # fastest when communication is cheap (paper §V-B, low core counts).
    omp_parallel_inefficiency: float = 0.006
    # calibrated: efficiency of the short strided boundary-shell loops the
    # overlap implementations use (§IV-C/D); per-node because prefetcher
    # quality differs across the Opteron generations.
    boundary_loop_efficiency: float = 0.45

    @property
    def cores(self) -> int:
        """Total cores per node."""
        return self.sockets * self.cores_per_socket

    @property
    def numa_domains(self) -> int:
        """Total NUMA domains per node."""
        return self.sockets * self.numa_domains_per_socket

    @property
    def cores_per_numa(self) -> int:
        """Cores in one NUMA domain."""
        return self.cores // self.numa_domains

    @property
    def peak_gflops_per_core(self) -> float:
        """Peak double-precision GF per core."""
        return self.clock_ghz * self.flops_per_cycle


@dataclass(frozen=True)
class InterconnectSpec:
    """Parallel interconnect + MPI implementation behaviour."""

    name: str  # Table II: interconnect
    mpi_name: str  # Table II: MPI
    latency_us: float  # calibrated: small-message half round trip
    bandwidth_gbs: float  # calibrated: per-NIC injection bandwidth
    per_message_cpu_us: float = 1.0  # calibrated: sender/receiver CPU overhead
    # Fraction of wire time that progresses while the host computes between
    # posting a nonblocking operation and waiting on it. The paper's MPI
    # libraries progress mostly inside MPI calls ([1] in the paper), so this
    # is well below 1. Only consulted under ``ProgressModel.MANUAL_POLL``.
    overlap_fraction: float = 0.35
    eager_threshold_bytes: int = 8192
    # How the library progresses traffic in the background (see
    # :class:`ProgressModel`). The default reproduces the paper era exactly.
    progress: ProgressModel = ProgressModel.MANUAL_POLL
    # PROGRESS_THREAD: background fraction for *all* messages (eager included
    # — the helper thread drains the receive queue without the application
    # entering MPI), and the fractional host-compute slowdown the polling
    # thread costs while ranks overlap communication.
    progress_overlap_fraction: float = 0.95
    progress_host_tax: float = 0.05
    # NICs per node sharing the injection load (EFA-style multi-rail).  Each
    # NIC is an independent fair-share link of ``bandwidth_gbs``; ranks are
    # striped across rails round-robin.
    nics_per_node: int = 1
    # GPU-aware MPI: the NIC DMAs GPU memory directly (GPUDirect RDMA), so
    # device buffers skip the host-staging PCIe hop in the GPU+MPI
    # implementations.
    gpudirect: bool = False

    #: New fields are omitted from the cache-key canonical form while at
    #: their defaults, so pre-existing cache keys (and the pinned keys in
    #: tests/perturb) remain stable. Same precedent as config seed/noise.
    _KEY_OMIT_DEFAULTS = {
        "progress": ProgressModel.MANUAL_POLL,
        "progress_overlap_fraction": 0.95,
        "progress_host_tax": 0.05,
        "nics_per_node": 1,
        "gpudirect": False,
    }

    def __post_init__(self):
        # Accept plain strings ("hardware-offload") anywhere a model is
        # given; normalize to the enum so identity checks and ``.value``
        # work uniformly. Invalid names raise ValueError here.
        object.__setattr__(self, "progress", ProgressModel(self.progress))
        if not 0.0 <= self.progress_overlap_fraction <= 1.0:
            raise ValueError("progress_overlap_fraction must be in [0, 1]")
        if self.progress_host_tax < 0.0:
            raise ValueError("progress_host_tax must be >= 0")
        if self.nics_per_node < 1:
            raise ValueError("nics_per_node must be >= 1")

    @property
    def latency_s(self) -> float:
        """Latency in seconds."""
        return self.latency_us * 1e-6

    @property
    def bandwidth_bps(self) -> float:
        """Bandwidth in bytes/second."""
        return self.bandwidth_gbs * 1e9

    def background_fraction(self, eager: bool) -> float:
        """Fraction of a message's wire bytes that move without host help.

        The single point where the progress model meets the transfer
        engines: both MPI backends (:mod:`repro.simmpi.world`,
        :mod:`repro.simmpi.mirror`) call this for the background start
        *and* the foreground remainder, so the two always agree.  Local
        (shared-memory) transfers never consult it — they are memcpys.
        """
        if self.progress is ProgressModel.MANUAL_POLL:
            # 2011 behaviour: eager sends sit in the receive queue until
            # the receiver enters the library; rendezvous advances by the
            # calibrated in-library fraction.
            return 0.0 if eager else self.overlap_fraction
        if self.progress is ProgressModel.PROGRESS_THREAD:
            return self.progress_overlap_fraction
        return 1.0  # HARDWARE_OFFLOAD: the NIC needs no host cycles

    @property
    def progress_tax(self) -> float:
        """Host-compute slowdown (fractional) charged for background progress.

        Nonzero only for ``PROGRESS_THREAD``: the polling thread steals
        cycles from the compute cores.  Hardware offload is free; manual
        poll has no background progress to pay for.
        """
        if self.progress is ProgressModel.PROGRESS_THREAD:
            return self.progress_host_tax
        return 0.0


@dataclass(frozen=True)
class GpuSpec:
    """One GPU plus its host link."""

    name: str  # Table II: NVIDIA Tesla GPU
    memory_gb: float  # Table II: GPU memory
    sm_count: int
    warp_size: int  # 32 on both generations (paper §V-C)
    max_threads_per_block: int  # 512 on C1060, 1024 on C2050 (paper §V-C)
    max_threads_per_sm: int
    max_blocks_per_sm: int
    shared_mem_per_sm_kb: float
    dp_peak_gflops: float
    mem_bandwidth_gbs: float  # calibrated: effective global-memory streaming
    # Host link (PCIe):
    pcie_bandwidth_gbs: float  # calibrated effective for pinned/async copies
    pcie_latency_us: float
    copy_engines: int  # 1 on C1060, 2 on C2050
    # Whether kernels from different streams genuinely overlap. Fermi
    # advertises concurrent kernels, but a full-occupancy stencil kernel
    # saturates every SM, so in practice trailing kernels serialize; both
    # devices are modeled without kernel-kernel overlap.
    concurrent_kernels: bool = False
    kernel_launch_us: float = 7.0
    # calibrated: synchronous copies of pageable (unpinned) buffers — what
    # the bulk GPU+MPI implementation (§IV-F) issues — run far below the
    # async pinned rate.
    pcie_unpinned_gbs: float = 1.0
    # calibrated: device-side strided gather/scatter kernels that pack x/y
    # face buffers (non-coalesced copies).
    strided_copy_gbs: float = 2.0
    # calibrated: stencil rate of the resident kernel at its best block size
    # (block-size shaping in simgpu.blockmodel scales relative to this), and
    # the rate of the one-point-thick boundary-face kernels of §IV-F/G
    # (non-coalesced, mostly-idle warps — the mechanism behind §V-E's 86->24).
    stencil_gflops_best: float = 50.0
    face_kernel_gflops: float = 0.5
    # calibrated: rate of thin uniform slab kernels (the GPU-block boundary
    # layer in §IV-I and z-perpendicular faces): coalesced but too little
    # parallelism to fill the device.
    thin_slab_efficiency: float = 0.16
    # calibrated: empirical y-block-size sweet spot of the measured kernels
    # (paper Figs. 7/8: 32x11 on C1060, 32x8 on C2050). Register pressure and
    # scheduler effects the occupancy arithmetic cannot see; modeled as a
    # Gaussian bump over the y block dimension (see simgpu.blockmodel).
    by_sweet_spot: float = 8.0
    by_sweet_amp: float = 0.30
    by_sweet_tol: float = 4.0
    regs_per_thread: int = 30
    register_file_size: int = 32768
    # NVLink-class intra-node peer fabric (0 = PCIe-only device: peer
    # copies stage through the host).  Modeled as one fair-share link per
    # node that every resident GPU's peer copies contend on.
    nvlink_bandwidth_gbs: float = 0.0
    nvlink_latency_us: float = 2.0

    #: Cache-key stability: see InterconnectSpec._KEY_OMIT_DEFAULTS.
    _KEY_OMIT_DEFAULTS = {
        "nvlink_bandwidth_gbs": 0.0,
        "nvlink_latency_us": 2.0,
    }

    @property
    def pcie_bandwidth_bps(self) -> float:
        """PCIe effective bandwidth in bytes/second."""
        return self.pcie_bandwidth_gbs * 1e9

    @property
    def pcie_latency_s(self) -> float:
        """Per-transfer PCIe/driver latency in seconds."""
        return self.pcie_latency_us * 1e-6

    @property
    def nvlink_bandwidth_bps(self) -> float:
        """NVLink peer bandwidth in bytes/second (0 when absent)."""
        return self.nvlink_bandwidth_gbs * 1e9

    @property
    def nvlink_latency_s(self) -> float:
        """Per-transfer NVLink latency in seconds."""
        return self.nvlink_latency_us * 1e-6

    @property
    def has_nvlink(self) -> bool:
        """Whether this device has an NVLink-class peer fabric."""
        return self.nvlink_bandwidth_gbs > 0.0


@dataclass(frozen=True)
class MachineSpec:
    """A whole machine: nodes, interconnect, optional GPUs (Table II)."""

    name: str
    compute_nodes: int  # Table II
    node: NodeSpec
    interconnect: InterconnectSpec
    gpu: Optional[GpuSpec] = None
    gpus_per_node: int = 0
    # OpenMP threads-per-task values measured in the paper (§V-B):
    thread_options: Tuple[int, ...] = (1,)
    # Core counts plotted in the paper's scaling figures:
    figure_core_counts: Tuple[int, ...] = ()

    @property
    def total_cores(self) -> int:
        """All CPU cores in the machine."""
        return self.compute_nodes * self.node.cores

    @property
    def cores_per_gpu(self) -> int:
        """CPU cores sharing one GPU (16 on Lens, 12 on Yona)."""
        if not self.gpus_per_node:
            raise ValueError(f"{self.name} has no GPUs")
        return self.node.cores // self.gpus_per_node

    def nodes_for_cores(self, cores: int) -> int:
        """Nodes needed to host ``cores`` (fully-packed allocation)."""
        per = self.node.cores
        if cores % per and cores > per:
            raise ValueError(f"{cores} cores is not a whole number of {per}-core nodes")
        return max(1, cores // per)

    def validate_threads(self, threads: int) -> None:
        """Reject thread counts the node cannot host."""
        if threads < 1 or threads > self.node.cores:
            raise ValueError(
                f"{threads} threads/task impossible on {self.node.cores}-core nodes"
            )
