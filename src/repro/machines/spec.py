"""Hardware specification dataclasses.

Fields marked "Table II" are transcribed from the paper; fields marked
"calibrated" are effective rates fitted to the paper's reported results
(see :mod:`repro.machines.calibration` for values and provenance).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

__all__ = ["NodeSpec", "InterconnectSpec", "GpuSpec", "MachineSpec"]


@dataclass(frozen=True)
class NodeSpec:
    """One compute node's CPU side."""

    sockets: int  # Table II: AMD Opteron sockets per node
    cores_per_socket: int  # Table II
    clock_ghz: float  # Table II: Opteron clock
    memory_gb: float  # Table II: memory per node
    numa_domains_per_socket: int = 1  # 2 for Magny-Cours (two 6-core dies)
    flops_per_cycle: float = 4.0  # SSE2 double precision: 2 mul + 2 add
    # calibrated:
    stencil_flop_efficiency: float = 0.16  # achieved fraction of peak on Eq. 2
    numa_bandwidth_gbs: float = 10.0  # streaming GB/s per NUMA domain
    numa_remote_penalty: float = 0.82  # bandwidth factor per extra NUMA domain spanned
    memcpy_bandwidth_gbs: float = 5.0  # single large on-node copy
    omp_region_overhead_us: float = 3.0  # fork/join + static-schedule barrier
    omp_per_thread_overhead_us: float = 0.25  # added per participating thread
    # calibrated: per-extra-thread loss of parallel efficiency (collapse(2)
    # imbalance, shared-cache interference); what makes pure-MPI (1 thread)
    # fastest when communication is cheap (paper §V-B, low core counts).
    omp_parallel_inefficiency: float = 0.006
    # calibrated: efficiency of the short strided boundary-shell loops the
    # overlap implementations use (§IV-C/D); per-node because prefetcher
    # quality differs across the Opteron generations.
    boundary_loop_efficiency: float = 0.45

    @property
    def cores(self) -> int:
        """Total cores per node."""
        return self.sockets * self.cores_per_socket

    @property
    def numa_domains(self) -> int:
        """Total NUMA domains per node."""
        return self.sockets * self.numa_domains_per_socket

    @property
    def cores_per_numa(self) -> int:
        """Cores in one NUMA domain."""
        return self.cores // self.numa_domains

    @property
    def peak_gflops_per_core(self) -> float:
        """Peak double-precision GF per core."""
        return self.clock_ghz * self.flops_per_cycle


@dataclass(frozen=True)
class InterconnectSpec:
    """Parallel interconnect + MPI implementation behaviour."""

    name: str  # Table II: interconnect
    mpi_name: str  # Table II: MPI
    latency_us: float  # calibrated: small-message half round trip
    bandwidth_gbs: float  # calibrated: per-NIC injection bandwidth
    per_message_cpu_us: float = 1.0  # calibrated: sender/receiver CPU overhead
    # Fraction of wire time that progresses while the host computes between
    # posting a nonblocking operation and waiting on it. The paper's MPI
    # libraries progress mostly inside MPI calls ([1] in the paper), so this
    # is well below 1.
    overlap_fraction: float = 0.35
    eager_threshold_bytes: int = 8192

    @property
    def latency_s(self) -> float:
        """Latency in seconds."""
        return self.latency_us * 1e-6

    @property
    def bandwidth_bps(self) -> float:
        """Bandwidth in bytes/second."""
        return self.bandwidth_gbs * 1e9


@dataclass(frozen=True)
class GpuSpec:
    """One GPU plus its host link."""

    name: str  # Table II: NVIDIA Tesla GPU
    memory_gb: float  # Table II: GPU memory
    sm_count: int
    warp_size: int  # 32 on both generations (paper §V-C)
    max_threads_per_block: int  # 512 on C1060, 1024 on C2050 (paper §V-C)
    max_threads_per_sm: int
    max_blocks_per_sm: int
    shared_mem_per_sm_kb: float
    dp_peak_gflops: float
    mem_bandwidth_gbs: float  # calibrated: effective global-memory streaming
    # Host link (PCIe):
    pcie_bandwidth_gbs: float  # calibrated effective for pinned/async copies
    pcie_latency_us: float
    copy_engines: int  # 1 on C1060, 2 on C2050
    # Whether kernels from different streams genuinely overlap. Fermi
    # advertises concurrent kernels, but a full-occupancy stencil kernel
    # saturates every SM, so in practice trailing kernels serialize; both
    # devices are modeled without kernel-kernel overlap.
    concurrent_kernels: bool = False
    kernel_launch_us: float = 7.0
    # calibrated: synchronous copies of pageable (unpinned) buffers — what
    # the bulk GPU+MPI implementation (§IV-F) issues — run far below the
    # async pinned rate.
    pcie_unpinned_gbs: float = 1.0
    # calibrated: device-side strided gather/scatter kernels that pack x/y
    # face buffers (non-coalesced copies).
    strided_copy_gbs: float = 2.0
    # calibrated: stencil rate of the resident kernel at its best block size
    # (block-size shaping in simgpu.blockmodel scales relative to this), and
    # the rate of the one-point-thick boundary-face kernels of §IV-F/G
    # (non-coalesced, mostly-idle warps — the mechanism behind §V-E's 86->24).
    stencil_gflops_best: float = 50.0
    face_kernel_gflops: float = 0.5
    # calibrated: rate of thin uniform slab kernels (the GPU-block boundary
    # layer in §IV-I and z-perpendicular faces): coalesced but too little
    # parallelism to fill the device.
    thin_slab_efficiency: float = 0.16
    # calibrated: empirical y-block-size sweet spot of the measured kernels
    # (paper Figs. 7/8: 32x11 on C1060, 32x8 on C2050). Register pressure and
    # scheduler effects the occupancy arithmetic cannot see; modeled as a
    # Gaussian bump over the y block dimension (see simgpu.blockmodel).
    by_sweet_spot: float = 8.0
    by_sweet_amp: float = 0.30
    by_sweet_tol: float = 4.0
    regs_per_thread: int = 30
    register_file_size: int = 32768

    @property
    def pcie_bandwidth_bps(self) -> float:
        """PCIe effective bandwidth in bytes/second."""
        return self.pcie_bandwidth_gbs * 1e9

    @property
    def pcie_latency_s(self) -> float:
        """Per-transfer PCIe/driver latency in seconds."""
        return self.pcie_latency_us * 1e-6


@dataclass(frozen=True)
class MachineSpec:
    """A whole machine: nodes, interconnect, optional GPUs (Table II)."""

    name: str
    compute_nodes: int  # Table II
    node: NodeSpec
    interconnect: InterconnectSpec
    gpu: Optional[GpuSpec] = None
    gpus_per_node: int = 0
    # OpenMP threads-per-task values measured in the paper (§V-B):
    thread_options: Tuple[int, ...] = (1,)
    # Core counts plotted in the paper's scaling figures:
    figure_core_counts: Tuple[int, ...] = ()

    @property
    def total_cores(self) -> int:
        """All CPU cores in the machine."""
        return self.compute_nodes * self.node.cores

    @property
    def cores_per_gpu(self) -> int:
        """CPU cores sharing one GPU (16 on Lens, 12 on Yona)."""
        if not self.gpus_per_node:
            raise ValueError(f"{self.name} has no GPUs")
        return self.node.cores // self.gpus_per_node

    def nodes_for_cores(self, cores: int) -> int:
        """Nodes needed to host ``cores`` (fully-packed allocation)."""
        per = self.node.cores
        if cores % per and cores > per:
            raise ValueError(f"{cores} cores is not a whole number of {per}-core nodes")
        return max(1, cores // per)

    def validate_threads(self, threads: int) -> None:
        """Reject thread counts the node cannot host."""
        if threads < 1 or threads > self.node.cores:
            raise ValueError(
                f"{threads} threads/task impossible on {self.node.cores}-core nodes"
            )
