"""Seeded noise & fault injection for the simulator.

The paper's headline nuance — nonblocking overlap helps only *below* a
machine-dependent core count, and the comm-thread variant always lags —
is the kind of result whose robustness depends on system variability. A
perfectly noiseless simulator can only reproduce the mean curve; this
package turns the reproduction into a robustness-analysis tool:

* :mod:`repro.perturb.rng` — a SplitMix-style counter RNG keyed by
  ``(seed, group, lane, index)``: reproducible and order-independent;
* :mod:`repro.perturb.spec` — :class:`NoiseSpec`, the immutable knob set
  (OS jitter, network latency/bandwidth variance, MPI progress stalls,
  drop/retransmit faults, stragglers, GPU/PCIe jitter) with presets and
  per-machine calibrations;
* :mod:`repro.perturb.model` — :class:`Perturbation`, the per-run
  injector threaded through the DES components (``perturb`` attributes,
  ``None`` by default — the ``seed=None`` path is bit-identical to the
  noiseless simulator);
* :mod:`repro.perturb.stats` — replication statistics (mean/p95/CI) for
  the Monte-Carlo driver :func:`repro.core.runner.run_replicated`.

``forced_noise`` installs a process-global override that adds a
``(seed, noise)`` pair to any config that has none — how the CLI's
``trace --experiments … --seed S --noise SPEC`` sweeps every experiment's
runs under perturbation without touching experiment code.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Optional, Tuple

from repro.perturb.model import NOISE_LANE, Perturbation, build_perturbation
from repro.perturb.rng import Stream, counter_u64, counter_uniform, derive_seed
from repro.perturb.spec import MACHINE_NOISE, PRESETS, NoiseSpec
from repro.perturb.stats import percentile, replication_stats

__all__ = [
    "MACHINE_NOISE",
    "NOISE_LANE",
    "NoiseSpec",
    "PRESETS",
    "Perturbation",
    "Stream",
    "build_perturbation",
    "counter_u64",
    "counter_uniform",
    "derive_seed",
    "forced_noise",
    "forced_override",
    "percentile",
    "replication_stats",
]

#: Process-global (seed, noise) override; see :func:`forced_noise`.
_forced: Optional[Tuple[int, NoiseSpec]] = None


def forced_override() -> Optional[Tuple[int, NoiseSpec]]:
    """The active global ``(seed, noise)`` override, if any."""
    return _forced


@contextmanager
def forced_noise(seed: int, noise: NoiseSpec):
    """Force ``(seed, noise)`` onto every run whose config has neither.

    Used by the perturbed trace-invariant sweep: experiment configs are
    built deep inside each experiment module, so the override lets the
    whole report run under jitter without plumbing noise through every
    sweep helper. Configs that already carry a seed keep their own.
    """
    global _forced
    prev = _forced
    _forced = (int(seed), noise)
    try:
        yield
    finally:
        _forced = prev
