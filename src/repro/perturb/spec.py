"""Noise/fault specification: the knobs of the perturbation layer.

A :class:`NoiseSpec` is an immutable, JSON-canonicalizable description of
*how much* system variability to inject — it carries no randomness itself
(the seed lives on :class:`~repro.core.config.RunConfig`). Every knob maps
to a documented physical effect; see ``docs/MODEL.md`` §10 for the full
model and per-machine calibrations.

Knob groups
-----------
* **Host**: ``os_jitter`` (multiplicative lognormal jitter per compute
  chunk — OS ticks, TLB/cache interference), ``straggler_prob`` /
  ``straggler_factor`` (a rank-sticky slowdown: a bad node).
* **Network**: ``latency_jitter`` and ``bandwidth_jitter`` (per-message
  lognormal variance), ``stall_prob`` / ``stall_us`` (MPI progress
  stalls: the library fails to progress a rendezvous until poked —
  first-order for nonblocking overlap, per Zhou et al.),
  ``drop_prob`` / ``retransmit_timeout_us`` / ``retransmit_backoff`` /
  ``max_retries`` (link-level drop with exponential-backoff retransmit).
* **GPU**: ``kernel_jitter`` (clock/boost variation), ``pcie_jitter``
  (DMA/driver interference on host–device copies).

Presets (:meth:`NoiseSpec.preset`) give "low" / "medium" / "high"
profiles; :data:`MACHINE_NOISE` holds per-machine default calibrations;
:meth:`NoiseSpec.scaled` scales a whole profile by one jitter knob (the
x-axis of the noise-sensitivity experiment); :meth:`NoiseSpec.parse`
accepts the CLI's ``--noise`` strings.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, fields, replace
from typing import Dict

__all__ = ["NoiseSpec", "PRESETS", "MACHINE_NOISE"]

log = logging.getLogger("repro.perturb")

#: Fields scaled multiplicatively by :meth:`NoiseSpec.scaled` (sigmas and
#: probabilities; timeouts/factors describe the fault shape, not its rate).
_SCALED_FIELDS = (
    "os_jitter",
    "straggler_prob",
    "latency_jitter",
    "bandwidth_jitter",
    "stall_prob",
    "drop_prob",
    "kernel_jitter",
    "pcie_jitter",
)

_PROB_FIELDS = ("straggler_prob", "stall_prob", "drop_prob")


@dataclass(frozen=True)
class NoiseSpec:
    """How much variability to inject (all knobs default to "off")."""

    # -- host ---------------------------------------------------------------
    #: sigma of the lognormal multiplicative jitter on each host compute
    #: chunk (0.01 ≈ 1% per-chunk variation; mean-preserving).
    os_jitter: float = 0.0
    #: probability that a rank is a straggler (drawn once per rank).
    straggler_prob: float = 0.0
    #: compute-slowdown factor of a straggler rank (>= 1).
    straggler_factor: float = 1.5
    # -- network ------------------------------------------------------------
    #: sigma of the lognormal jitter on per-message latency.
    latency_jitter: float = 0.0
    #: sigma of the lognormal jitter on per-message wire time.
    bandwidth_jitter: float = 0.0
    #: per-message probability of an MPI progress stall.
    stall_prob: float = 0.0
    #: mean stall duration in microseconds (exponentially distributed).
    stall_us: float = 50.0
    #: per-message probability of a link-level drop (then retransmitted).
    drop_prob: float = 0.0
    #: first retransmit timeout in microseconds.
    retransmit_timeout_us: float = 100.0
    #: timeout multiplier per successive retry (exponential backoff).
    retransmit_backoff: float = 2.0
    #: drops after which the message goes through anyway (bounds the model;
    #: a real network would raise an error to the application).
    max_retries: int = 3
    # -- gpu ----------------------------------------------------------------
    #: sigma of the lognormal jitter on GPU kernel durations.
    kernel_jitter: float = 0.0
    #: sigma of the lognormal jitter on PCIe copies (async and blocking).
    pcie_jitter: float = 0.0

    def __post_init__(self):
        for f in fields(self):
            v = getattr(self, f.name)
            if not isinstance(v, (int, float)) or isinstance(v, bool):
                raise TypeError(f"NoiseSpec.{f.name} must be a number, got {v!r}")
            if v < 0:
                raise ValueError(f"NoiseSpec.{f.name} must be >= 0, got {v!r}")
        for name in _PROB_FIELDS:
            v = getattr(self, name)
            if v > 1.0:
                raise ValueError(f"NoiseSpec.{name} is a probability, got {v!r}")
        if self.straggler_factor < 1.0:
            raise ValueError(
                f"straggler_factor must be >= 1, got {self.straggler_factor!r}"
            )
        if self.retransmit_backoff < 1.0:
            raise ValueError(
                f"retransmit_backoff must be >= 1, got {self.retransmit_backoff!r}"
            )
        if self.max_retries != int(self.max_retries):
            raise ValueError(f"max_retries must be an integer, got {self.max_retries!r}")

    # -- introspection ------------------------------------------------------
    @property
    def is_null(self) -> bool:
        """True when every stochastic knob is off (no perturbation)."""
        return all(getattr(self, name) == 0.0 for name in _SCALED_FIELDS)

    # -- derivation ---------------------------------------------------------
    def scaled(self, factor: float) -> "NoiseSpec":
        """Scale every sigma/probability by ``factor`` (probabilities clamp
        at 1). ``scaled(0)`` is the null spec; this is the x-axis of the
        noise-sensitivity experiment."""
        if factor < 0:
            raise ValueError(f"scale factor must be >= 0, got {factor!r}")
        changes = {}
        for name in _SCALED_FIELDS:
            v = getattr(self, name) * factor
            if name in _PROB_FIELDS:
                v = min(1.0, v)
            changes[name] = v
        return replace(self, **changes)

    def with_(self, **changes) -> "NoiseSpec":
        """A copy with some knobs replaced."""
        return replace(self, **changes)

    # -- construction -------------------------------------------------------
    @classmethod
    def preset(cls, name: str) -> "NoiseSpec":
        """A named profile: ``off`` / ``low`` / ``medium`` / ``high``."""
        try:
            return PRESETS[name]
        except KeyError:
            raise ValueError(
                f"unknown noise preset {name!r}; known: {sorted(PRESETS)}"
            ) from None

    @classmethod
    def for_machine(cls, machine_name: str) -> "NoiseSpec":
        """The default noise calibration for a catalog machine.

        Accepts either the CLI key (``yona``) or the display name
        (``Yona``, ``A100-SXM``); lookup uses the same normalization as
        the machine catalog (case/space/hyphen-insensitive).  A machine
        without a calibration entry falls back to the ``off`` preset
        with a logged note, so new catalog entries work with ``--noise``
        before their calibration lands.
        """
        from repro.machines.spec import normalize_machine_name

        spec = MACHINE_NOISE.get(normalize_machine_name(machine_name))
        if spec is None:
            log.info(
                "no noise calibration for machine %r (known: %s); "
                "falling back to the 'off' preset",
                machine_name, sorted(MACHINE_NOISE),
            )
            return PRESETS["off"]
        return spec

    @classmethod
    def parse(cls, text: str) -> "NoiseSpec":
        """Parse a CLI ``--noise`` string.

        Accepted forms::

            medium              # a preset
            medium*0.5          # a preset scaled by a factor
            os_jitter=0.02,stall_prob=0.01,stall_us=80   # explicit knobs
            medium,stall_prob=0.2       # preset with overrides
        """
        text = text.strip()
        if not text:
            raise ValueError("empty --noise specification")
        base = cls()
        overrides: Dict[str, float] = {}
        known = {f.name for f in fields(cls)}
        for i, part in enumerate(p.strip() for p in text.split(",")):
            if "=" in part:
                key, _, val = part.partition("=")
                key = key.strip()
                if key not in known:
                    raise ValueError(
                        f"unknown noise knob {key!r}; known: {sorted(known)}"
                    )
                try:
                    overrides[key] = float(val)
                except ValueError:
                    raise ValueError(
                        f"noise knob {key}={val!r} is not a number"
                    ) from None
            elif i == 0:
                name, star, factor = part.partition("*")
                base = cls.preset(name)
                if star:
                    try:
                        base = base.scaled(float(factor))
                    except ValueError as exc:
                        raise ValueError(
                            f"bad noise scale in {part!r}: {exc}"
                        ) from None
            else:
                raise ValueError(
                    f"noise part {part!r} is neither the leading preset nor "
                    f"a knob=value pair"
                )
        if overrides:
            if "max_retries" in overrides:
                overrides["max_retries"] = int(overrides["max_retries"])
            base = base.with_(**overrides)
        return base


#: Named profiles. "medium" approximates the jitter of a busy production
#: cluster (a few % OS noise, occasional progress stalls); "high" is a
#: pathological machine (stressed NICs, frequent stalls, rare drops).
PRESETS: Dict[str, NoiseSpec] = {
    "off": NoiseSpec(),
    "low": NoiseSpec(
        os_jitter=0.005,
        latency_jitter=0.05,
        bandwidth_jitter=0.02,
        stall_prob=0.002,
        stall_us=20.0,
        kernel_jitter=0.005,
        pcie_jitter=0.01,
    ),
    "medium": NoiseSpec(
        os_jitter=0.02,
        latency_jitter=0.15,
        bandwidth_jitter=0.08,
        stall_prob=0.02,
        stall_us=60.0,
        drop_prob=0.001,
        kernel_jitter=0.015,
        pcie_jitter=0.03,
    ),
    "high": NoiseSpec(
        os_jitter=0.06,
        straggler_prob=0.01,
        straggler_factor=1.3,
        latency_jitter=0.4,
        bandwidth_jitter=0.2,
        stall_prob=0.08,
        stall_us=120.0,
        drop_prob=0.005,
        kernel_jitter=0.04,
        pcie_jitter=0.08,
    ),
}

#: Default calibrations per Table II machine (see docs/MODEL.md §10):
#: the Cray XT5/XE6 systems run a jitterless compute-node kernel (very low
#: OS noise, SeaStar/Gemini progress quirks), the commodity-cluster GPU
#: machines (Lens, Yona) see more OS and PCIe interference.
MACHINE_NOISE: Dict[str, NoiseSpec] = {
    "jaguarpf": NoiseSpec(
        os_jitter=0.003,
        latency_jitter=0.1,
        bandwidth_jitter=0.05,
        stall_prob=0.01,
        stall_us=40.0,
    ),
    "hopper": NoiseSpec(
        os_jitter=0.004,
        latency_jitter=0.08,
        bandwidth_jitter=0.04,
        stall_prob=0.008,
        stall_us=30.0,
    ),
    "lens": NoiseSpec(
        os_jitter=0.02,
        latency_jitter=0.15,
        bandwidth_jitter=0.08,
        stall_prob=0.015,
        stall_us=60.0,
        kernel_jitter=0.01,
        pcie_jitter=0.04,
    ),
    "yona": NoiseSpec(
        os_jitter=0.015,
        latency_jitter=0.12,
        bandwidth_jitter=0.06,
        stall_prob=0.012,
        stall_us=50.0,
        kernel_jitter=0.01,
        pcie_jitter=0.03,
    ),
    # Modern scenario machines (catalog.py): HPE/Cray Slingshot systems run
    # a quiet tuned kernel; the cloud EFA machine sees hypervisor jitter and
    # a software progress engine that stalls far more often.
    "a100sxm": NoiseSpec(
        os_jitter=0.004,
        latency_jitter=0.08,
        bandwidth_jitter=0.04,
        stall_prob=0.002,  # NIC-resident progress: stalls are rare
        stall_us=10.0,
        kernel_jitter=0.008,
        pcie_jitter=0.02,
    ),
    "milanss11": NoiseSpec(
        os_jitter=0.004,
        latency_jitter=0.08,
        bandwidth_jitter=0.04,
        stall_prob=0.002,
        stall_us=10.0,
    ),
    "efacloud": NoiseSpec(
        os_jitter=0.03,  # hypervisor + noisy neighbours
        straggler_prob=0.005,
        straggler_factor=1.2,
        latency_jitter=0.3,
        bandwidth_jitter=0.15,
        stall_prob=0.03,  # software progress engine loses the CPU
        stall_us=100.0,
    ),
}
# The display name "Hopper II" normalizes to "hopperii"; alias it so
# NoiseSpec.for_machine(machine.name) finds the same calibration as the
# CLI key "hopper".
MACHINE_NOISE["hopperii"] = MACHINE_NOISE["hopper"]
