"""The runtime perturbation object threaded through the simulator.

One :class:`Perturbation` is built per run (in
:func:`repro.core.runner._run_uncached`) from the config's ``(seed,
noise)`` pair and handed to every simulated component the same way the
tracer is: ``component.perturb`` defaults to ``None`` and every hook site
guards with one ``if perturb is not None`` check, so the noiseless path
(``seed=None``) stays bit-identical to the pre-perturbation simulator and
its cost is one pointer comparison per site (gated ≤ 3% by
``tools/perf_smoke.py``).

Draws come from :mod:`repro.perturb.rng` counter streams keyed by
``(seed, group, lane)`` with a per-stream event index, so a component's
noise sequence is independent of every other component's activity — the
same config produces bit-identical results across process restarts,
``--jobs N`` worker counts, and scheduling refactors that do not change
a stream's own draw order.

Fault events (progress stalls, drop/retransmit cycles, straggler
designations) are recorded on a dedicated ``"noise"`` trace lane when a
tracer is attached, so perturbed timelines show *why* an interval
stretched; continuous jitter factors are not traced (they would double
every event count for no diagnostic value).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.perturb.rng import (
    LANE_COMPUTE,
    LANE_DROP,
    LANE_KERNEL,
    LANE_NET_BANDWIDTH,
    LANE_NET_LATENCY,
    LANE_PCIE,
    LANE_STALL,
    LANE_STRAGGLER,
    Stream,
)
from repro.perturb.spec import NoiseSpec

__all__ = ["Perturbation"]

#: Trace lane carrying discrete noise/fault events.
NOISE_LANE = "noise"


class Perturbation:
    """Per-run noise/fault injector (see module docstring)."""

    __slots__ = ("seed", "spec", "tracer", "_streams", "_stragglers")

    def __init__(self, seed: int, spec: NoiseSpec):
        if seed is None:
            raise ValueError("Perturbation requires a concrete seed")
        self.seed = int(seed)
        self.spec = spec
        #: optional repro.obs tracer; fault events land on the "noise" lane.
        self.tracer = None
        self._streams: Dict[Tuple[int, int], Stream] = {}
        self._stragglers: Dict[int, float] = {}

    # -- streams ------------------------------------------------------------
    def stream(self, group: int, lane: int) -> Stream:
        """The (cached) counter stream for one ``(group, lane)`` pair."""
        key = (group, lane)
        s = self._streams.get(key)
        if s is None:
            s = Stream(self.seed, group, lane)
            self._streams[key] = s
        return s

    # -- host ---------------------------------------------------------------
    def straggler_factor(self, rank: int) -> float:
        """Rank-sticky compute slowdown (drawn once per rank)."""
        f = self._stragglers.get(rank)
        if f is None:
            spec = self.spec
            if spec.straggler_prob > 0.0 and self.stream(
                rank, LANE_STRAGGLER
            ).bernoulli(spec.straggler_prob):
                f = spec.straggler_factor
                if self.tracer is not None:
                    self.tracer.mark(
                        NOISE_LANE, "straggler", 0.0, group=rank, cat="noise",
                        args={"rank": rank, "factor": f},
                    )
            else:
                f = 1.0
            self._stragglers[rank] = f
        return f

    def compute_factor(self, rank: int) -> float:
        """Multiplicative factor for one host compute/copy chunk."""
        spec = self.spec
        f = self.straggler_factor(rank)
        if spec.os_jitter > 0.0:
            f *= self.stream(rank, LANE_COMPUTE).lognormal_factor(spec.os_jitter)
        return f

    # -- network ------------------------------------------------------------
    def latency_factor(self, rank: int) -> float:
        """Multiplicative factor on one message's latency term."""
        sigma = self.spec.latency_jitter
        if sigma <= 0.0:
            return 1.0
        return self.stream(rank, LANE_NET_LATENCY).lognormal_factor(sigma)

    def wire_factor(self, rank: int) -> float:
        """Multiplicative factor on one message's wire work (bytes)."""
        sigma = self.spec.bandwidth_jitter
        if sigma <= 0.0:
            return 1.0
        return self.stream(rank, LANE_NET_BANDWIDTH).lognormal_factor(sigma)

    def message_delay(self, rank: int, now: float) -> float:
        """Extra seconds injected before one message progresses.

        Combines the progress-stall model (with probability ``stall_prob``
        the MPI library fails to progress this message for an
        exponentially distributed ``stall_us``) and the drop/retransmit
        model (each of up to ``max_retries`` independent drops costs one
        timeout, growing by ``retransmit_backoff`` per retry). Records the
        injected faults on the ``"noise"`` trace lane.
        """
        spec = self.spec
        delay = 0.0
        if spec.stall_prob > 0.0:
            s = self.stream(rank, LANE_STALL)
            if s.bernoulli(spec.stall_prob):
                stall = s.exponential(spec.stall_us * 1e-6)
                delay += stall
                if self.tracer is not None and stall > 0.0:
                    self.tracer.record(
                        NOISE_LANE, "stall", now, now + stall,
                        group=rank, cat="noise",
                        args={"rank": rank, "delay_us": stall * 1e6},
                    )
        if spec.drop_prob > 0.0:
            s = self.stream(rank, LANE_DROP)
            timeout = spec.retransmit_timeout_us * 1e-6
            drops = 0
            penalty = 0.0
            while drops < spec.max_retries and s.bernoulli(spec.drop_prob):
                penalty += timeout
                timeout *= spec.retransmit_backoff
                drops += 1
            if drops:
                delay += penalty
                if self.tracer is not None:
                    self.tracer.record(
                        NOISE_LANE, "retransmit", now + delay - penalty,
                        now + delay, group=rank, cat="noise",
                        args={"rank": rank, "drops": drops,
                              "penalty_us": penalty * 1e6},
                    )
        return delay

    # -- gpu ----------------------------------------------------------------
    def kernel_factor(self, group: int) -> float:
        """Multiplicative factor on one GPU kernel's duration."""
        sigma = self.spec.kernel_jitter
        if sigma <= 0.0:
            return 1.0
        return self.stream(group, LANE_KERNEL).lognormal_factor(sigma)

    def pcie_factor(self, group: int) -> float:
        """Multiplicative factor on one PCIe copy's duration/work."""
        sigma = self.spec.pcie_jitter
        if sigma <= 0.0:
            return 1.0
        return self.stream(group, LANE_PCIE).lognormal_factor(sigma)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Perturbation(seed={self.seed}, spec={self.spec!r})"


def build_perturbation(
    seed: Optional[int], spec: Optional[NoiseSpec]
) -> Optional[Perturbation]:
    """The run's perturbation object, or ``None`` for the noiseless path.

    ``seed=None`` or a missing/null spec mean *no perturbation at all*:
    no object is allocated and every hook site sees ``perturb is None``,
    keeping the pre-perturbation simulator bit-identical.
    """
    if seed is None or spec is None or spec.is_null:
        return None
    return Perturbation(seed, spec)
