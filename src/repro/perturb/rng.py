"""Counter-based deterministic RNG for the perturbation layer.

The perturbation layer must be **reproducible** (same seed, same config →
bit-identical results, across processes and worker counts) and
**order-independent** (a draw's value must not depend on how many draws
*other* simulated components made before it). Stateful generators fail the
second requirement: interleaving changes with scheduling details. Instead,
every random number here is a pure function of a four-word key::

    value = mix(seed, group, lane, index)

in the style of Philox/SplitMix counter RNGs: the SplitMix64 finalizer is
applied over the key words, which passes the usual avalanche criteria
(flipping any input bit flips ~half the output bits). Each simulated
component draws from its own :class:`Stream` — a ``(seed, group, lane)``
triple with a private ``index`` counter — so streams never interfere.

Pure-Python on purpose: draws happen at most a few times per simulated
event, the engine is Python too, and avoiding NumPy keeps per-draw
allocation at zero.
"""

from __future__ import annotations

import math

__all__ = [
    "LANE_COMPUTE",
    "LANE_NET_LATENCY",
    "LANE_NET_BANDWIDTH",
    "LANE_STALL",
    "LANE_DROP",
    "LANE_PCIE",
    "LANE_KERNEL",
    "LANE_STRAGGLER",
    "LANE_REPLICA",
    "counter_u64",
    "counter_uniform",
    "derive_seed",
    "Stream",
]

#: Lane ids — one per perturbation site family. Streams on different lanes
#: are statistically independent even for the same (seed, group).
LANE_COMPUTE = 0  #: host OS-noise jitter on compute chunks
LANE_NET_LATENCY = 1  #: per-message latency jitter
LANE_NET_BANDWIDTH = 2  #: per-message wire-time jitter
LANE_STALL = 3  #: MPI progress-stall injection
LANE_DROP = 4  #: dropped-message / retransmit faults
LANE_PCIE = 5  #: PCIe / driver jitter
LANE_KERNEL = 6  #: GPU kernel duration jitter
LANE_STRAGGLER = 7  #: per-rank straggler designation
LANE_REPLICA = 8  #: Monte-Carlo replica seed derivation

_MASK64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15  # 2^64 / phi, the SplitMix64 increment
_INV_2_53 = 1.0 / (1 << 53)


def _mix(z: int) -> int:
    """SplitMix64 finalizer: avalanche one 64-bit word."""
    z &= _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return z ^ (z >> 31)


def counter_u64(seed: int, group: int, lane: int, index: int) -> int:
    """The keyed 64-bit draw: a pure function of ``(seed, group, lane, index)``.

    Words are absorbed sequentially, each offset by a distinct multiple of
    the golden-ratio increment so that permuting key words changes the
    output (``(a, b)`` and ``(b, a)`` collide in naive xor folding).
    """
    z = _mix((seed + _GOLDEN) & _MASK64)
    z = _mix(z ^ ((group + 2 * _GOLDEN) & _MASK64))
    z = _mix(z ^ ((lane + 3 * _GOLDEN) & _MASK64))
    z = _mix(z ^ ((index + 5 * _GOLDEN) & _MASK64))
    return z


def counter_uniform(seed: int, group: int, lane: int, index: int) -> float:
    """Keyed uniform draw in ``[0, 1)`` (53-bit mantissa, exact halving grid)."""
    return (counter_u64(seed, group, lane, index) >> 11) * _INV_2_53


def derive_seed(seed: int, replica: int) -> int:
    """Child seed for Monte-Carlo replica ``replica`` (replica 0 = ``seed``).

    Replica 0 maps to the parent seed itself so ``--replicas 1`` is the
    same run as no replication; higher replicas draw fresh 63-bit seeds
    from the :data:`LANE_REPLICA` stream.
    """
    if replica == 0:
        return seed
    return counter_u64(seed, 0, LANE_REPLICA, replica) >> 1


class Stream:
    """One component's private draw sequence: ``(seed, group, lane)`` + index.

    The index increments per draw, so repeated draws differ, but the values
    are independent of any *other* stream's activity — the
    order-independence the simulator needs to stay deterministic across
    backends, worker counts and scheduling refactors.
    """

    __slots__ = ("seed", "group", "lane", "index")

    def __init__(self, seed: int, group: int, lane: int):
        self.seed = seed
        self.group = group
        self.lane = lane
        self.index = 0

    def uniform(self) -> float:
        """Next uniform draw in ``[0, 1)``."""
        i = self.index
        self.index = i + 1
        return (counter_u64(self.seed, self.group, self.lane, i) >> 11) * _INV_2_53

    def normal(self) -> float:
        """Next standard-normal draw (Box–Muller over two keyed uniforms)."""
        u1 = self.uniform()
        u2 = self.uniform()
        # Guard u1 == 0 (probability 2^-53; log would blow up).
        r = math.sqrt(-2.0 * math.log(u1 + _INV_2_53))
        return r * math.cos(2.0 * math.pi * u2)

    def lognormal_factor(self, sigma: float) -> float:
        """Multiplicative jitter factor ``exp(sigma * N(0,1) - sigma^2/2)``.

        The ``-sigma^2/2`` drift keeps the factor's *mean* at 1, so adding
        jitter perturbs individual runs without inflating the average cost
        (replication means stay anchored to the noiseless model for small
        sigma).
        """
        if sigma <= 0.0:
            return 1.0
        return math.exp(sigma * self.normal() - 0.5 * sigma * sigma)

    def exponential(self, mean: float) -> float:
        """Next exponential draw with the given mean (heavy-ish stall tails)."""
        if mean <= 0.0:
            return 0.0
        u = self.uniform()
        return -mean * math.log(1.0 - u + _INV_2_53)

    def bernoulli(self, prob: float) -> bool:
        """Next biased coin flip (``True`` with probability ``prob``)."""
        if prob <= 0.0:
            return False
        if prob >= 1.0:
            return True
        return self.uniform() < prob

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Stream(seed={self.seed}, group={self.group}, "
            f"lane={self.lane}, index={self.index})"
        )
