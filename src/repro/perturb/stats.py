"""Replication statistics for Monte-Carlo noise studies.

The replication driver (:func:`repro.core.runner.run_replicated`) runs N
seeded replicas of one config and attaches the summary produced here to
``RunResult.stats``. Pure Python, deterministic, no NumPy: the numbers
must be bit-identical across processes and platforms so replicated
results can be cached, compared and regression-tested exactly.
"""

from __future__ import annotations

import math
from typing import Dict, Sequence

__all__ = ["percentile", "replication_stats"]

#: Two-sided 97.5% normal quantile for the 95% confidence interval.
_Z95 = 1.959963984540054


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile (NumPy's default), ``q`` in [0, 100]."""
    if not values:
        raise ValueError("percentile of an empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile q must be in [0, 100], got {q!r}")
    xs = sorted(values)
    if len(xs) == 1:
        return xs[0]
    pos = (q / 100.0) * (len(xs) - 1)
    lo = int(math.floor(pos))
    hi = int(math.ceil(pos))
    if lo == hi:
        return xs[lo]
    frac = pos - lo
    return xs[lo] * (1.0 - frac) + xs[hi] * frac


def replication_stats(elapsed: Sequence[float]) -> Dict[str, float]:
    """Summary of N replicas' elapsed times.

    Returns ``n``, ``mean``, ``std`` (sample, ddof=1; 0 for n=1), ``min``,
    ``max``, ``p50``, ``p95``, and ``ci95`` (the half-width of the normal
    95% confidence interval on the mean, ``z * std / sqrt(n)``).
    """
    xs = list(elapsed)
    if not xs:
        raise ValueError("replication_stats of an empty sequence")
    n = len(xs)
    mean = math.fsum(xs) / n
    if n > 1:
        var = math.fsum((x - mean) ** 2 for x in xs) / (n - 1)
        std = math.sqrt(var)
    else:
        std = 0.0
    return {
        "n": float(n),
        "mean": mean,
        "std": std,
        "min": min(xs),
        "max": max(xs),
        "p50": percentile(xs, 50.0),
        "p95": percentile(xs, 95.0),
        "ci95": _Z95 * std / math.sqrt(n),
    }
