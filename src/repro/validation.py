"""High-level validation: run every correctness oracle for an implementation.

The paper verifies its implementations "by recording norms of the
difference between the computed state and the analytic state" (§IV-A).
This module packages that and this reproduction's two stronger oracles
behind one call, used by ``advection-repro validate`` and the test suite:

1. **bit-exactness** against the single-domain reference sweep;
2. **unit-CFL exact shift** (axis-aligned velocity, nu = 1);
3. **analytic-solution norms** after a longer run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.config import RunConfig
from repro.core.registry import get_implementation
from repro.core.runner import run
from repro.machines import JAGUARPF, YONA
from repro.machines.spec import MachineSpec
from repro.stencil.coefficients import max_stable_nu, tensor_product_coefficients
from repro.stencil.grid import Grid3D, allocate_field, gaussian_initial_condition
from repro.stencil.kernels import advance, interior

__all__ = ["ValidationReport", "validate_implementation"]


@dataclass
class ValidationReport:
    """Outcome of the three oracles for one implementation."""

    implementation: str
    machine: str
    bit_exact_max_diff: float
    shift_max_error: float
    analytic_norms: Dict[str, float]
    checks: List[Tuple[str, bool]] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """True when every oracle passed."""
        return all(ok for _, ok in self.checks)

    def to_text(self) -> str:
        """Human-readable report."""
        lines = [f"validation: {self.implementation} on {self.machine}"]
        for name, ok in self.checks:
            lines.append(f"  [{'PASS' if ok else 'FAIL'}] {name}")
        lines.append(f"  bit-exact max |diff| vs reference: {self.bit_exact_max_diff:.2e}")
        lines.append(f"  unit-CFL shift max error:          {self.shift_max_error:.2e}")
        lines.append(
            "  analytic norms: "
            + "  ".join(f"{k}={v:.3e}" for k, v in self.analytic_norms.items())
        )
        return "\n".join(lines)


def _reference(domain, velocity, nu_fraction, steps, sigma):
    grid = Grid3D(domain)
    nu = nu_fraction * max_stable_nu(velocity)
    coeffs = tensor_product_coefficients(velocity, nu)
    u = allocate_field(grid.n)
    interior(u)[...] = gaussian_initial_condition(grid, sigma=sigma)
    u = advance(u, coeffs, steps=steps)
    return interior(u).copy()


def validate_implementation(
    key: str,
    machine: Optional[MachineSpec] = None,
    domain: Tuple[int, int, int] = (16, 16, 16),
    steps: int = 3,
) -> ValidationReport:
    """Run all three oracles for implementation ``key``.

    Uses a GPU machine automatically when the implementation needs one.
    Grids are intentionally small: functional runs simulate every rank.
    """
    impl = get_implementation(key)
    if machine is None:
        machine = YONA if impl.uses_gpu else JAGUARPF
    cores = machine.node.cores
    threads = cores if not impl.uses_mpi else cores // 2
    common = dict(
        machine=machine, implementation=key, cores=cores,
        threads_per_task=threads, box_thickness=2,
        functional=True, network="full",
    )

    # Oracle 1: bit-exactness on a generic velocity.
    velocity = (1.0, 0.9, 0.8)
    ref = _reference(domain, velocity, 1.0, steps, sigma=0.1)
    r1 = run(RunConfig(steps=steps, domain=domain, velocity=velocity,
                       sigma=0.1, **common))
    bit_diff = float(np.abs(r1.global_field - ref).max())

    # Oracle 2: unit-CFL exact shift along x.
    grid = Grid3D(domain)
    u0 = gaussian_initial_condition(grid, sigma=0.1)
    r2 = run(RunConfig(steps=steps, domain=domain, velocity=(1.0, 0.0, 0.0),
                       sigma=0.1, **common))
    shifted = np.roll(u0, steps, axis=0)
    shift_err = float(np.abs(r2.global_field - shifted).max())

    # Oracle 3: analytic norms after a longer run on a finer grid.
    r3 = run(RunConfig(steps=4 * steps, domain=(24, 24, 24),
                       velocity=velocity, sigma=0.15, **common))

    report = ValidationReport(
        implementation=key,
        machine=machine.name,
        bit_exact_max_diff=bit_diff,
        shift_max_error=shift_err,
        analytic_norms=r3.norms,
    )
    report.checks = [
        ("bit-exact vs single-domain reference", bit_diff == 0.0),
        ("unit-CFL advection is an exact shift", shift_err < 1e-12),
        ("tracks the analytic solution", r3.norms["linf"] < 0.1),
    ]
    return report
