"""Service telemetry: counters, gauges and latency histograms.

A tiny self-contained metrics registry (no prometheus_client dependency;
the container bakes in only the scientific stack).  The daemon exposes it
two ways: the ``stats`` verb returns :meth:`ServiceMetrics.to_dict`
embedded in a JSON document, and ``GET /metrics`` renders
:func:`render_prometheus` — Prometheus text exposition format, flat
counters plus cumulative histogram buckets.

Thread-safety: the event loop observes latencies while scheduler
completion hooks (worker/drainer threads) bump progress counters, so
every mutation takes one small lock.  Snapshots are taken under the same
lock — a ``/metrics`` scrape can never see a histogram whose ``count``
disagrees with its buckets.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any, Dict, List, Mapping, Optional, Tuple

__all__ = ["LatencyHistogram", "ServiceMetrics", "render_prometheus"]

#: Histogram bucket upper bounds in seconds (geometric, ~x4 steps, spans
#: 100 us warm hits through multi-minute cold sweeps).
DEFAULT_BOUNDS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 300.0,
)


class LatencyHistogram:
    """Fixed-bucket cumulative histogram with exact count/sum.

    Not locked itself — :class:`ServiceMetrics` serializes access.
    """

    __slots__ = ("bounds", "buckets", "count", "sum")

    def __init__(self, bounds: Tuple[float, ...] = DEFAULT_BOUNDS):
        self.bounds = bounds
        self.buckets = [0] * (len(bounds) + 1)  # +1: the +Inf bucket
        self.count = 0
        self.sum = 0.0

    def observe(self, seconds: float) -> None:
        self.buckets[bisect_left(self.bounds, seconds)] += 1
        self.count += 1
        self.sum += seconds

    def quantile(self, q: float) -> float:
        """Upper bound of the bucket holding the ``q`` quantile.

        Conservative (the true latency is <= the returned bound); the
        +Inf bucket reports the largest finite bound.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q!r}")
        if self.count == 0:
            return 0.0
        target = q * self.count
        seen = 0
        for i, n in enumerate(self.buckets):
            seen += n
            if seen >= target:
                return self.bounds[min(i, len(self.bounds) - 1)]
        return self.bounds[-1]

    def snapshot(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "sum_s": self.sum,
            "p50_s": self.quantile(0.50),
            "p99_s": self.quantile(0.99),
            "buckets": [
                [le, n] for le, n in zip(self.bounds, self.buckets)
            ] + [["+Inf", self.buckets[-1]]],
        }


#: Counter names the service always reports (zeros included).
COUNTER_NAMES = (
    "connections",
    "http_requests",
    "requests",
    "responses_ok",
    "responses_error",
    "protocol_errors",
    "warm_memo_hits",
    "warm_cache_hits",
    "coalesced",
    "admitted",
    "rejected_busy",
    "rejected_draining",
    "timeouts",
    "progress_events",
)


class ServiceMetrics:
    """The daemon's counters, gauges and latency histograms."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {k: 0 for k in COUNTER_NAMES}
        self._gauges: Dict[str, int] = {"active_connections": 0, "inflight": 0}
        #: warm = served without a scheduler dispatch; all = every request
        self._hist: Dict[str, LatencyHistogram] = {
            "warm": LatencyHistogram(),
            "all": LatencyHistogram(),
        }

    def inc(self, name: str, n: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + n

    def gauge_add(self, name: str, delta: int) -> None:
        with self._lock:
            self._gauges[name] = self._gauges.get(name, 0) + delta

    def observe_latency(self, seconds: float, warm: bool) -> None:
        with self._lock:
            self._hist["all"].observe(seconds)
            if warm:
                self._hist["warm"].observe(seconds)

    def to_dict(self) -> Dict[str, Any]:
        """One consistent snapshot of every counter/gauge/histogram."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "latency": {
                    name: hist.snapshot()
                    for name, hist in self._hist.items()
                },
            }


def _prom_float(v: float) -> str:
    return repr(float(v))


def render_prometheus(
    service: Dict[str, Any],
    scheduler: Optional[Mapping[str, Any]] = None,
    cache: Optional[Mapping[str, int]] = None,
) -> str:
    """Prometheus text exposition of the service + scheduler + cache.

    ``service`` is :meth:`ServiceMetrics.to_dict`; ``scheduler`` is
    :meth:`repro.sched.Scheduler.snapshot` (a single-lock-acquire
    consistent snapshot, so no ``coalesced > submitted`` torn read can
    ever be exposed); ``cache`` is ``RunCache.stats()``.
    """
    lines: List[str] = []
    for name, value in sorted(service["counters"].items()):
        lines.append(f"repro_serve_{name}_total {value}")
    for name, value in sorted(service["gauges"].items()):
        lines.append(f"repro_serve_{name} {value}")
    for hname, hist in sorted(service["latency"].items()):
        metric = f"repro_serve_latency_{hname}_seconds"
        cumulative = 0
        for le, n in hist["buckets"]:
            cumulative += n
            bound = le if isinstance(le, str) else _prom_float(le)
            lines.append(f'{metric}_bucket{{le="{bound}"}} {cumulative}')
        lines.append(f"{metric}_count {hist['count']}")
        lines.append(f"{metric}_sum {_prom_float(hist['sum_s'])}")
    if scheduler is not None:
        for name, value in sorted(scheduler["counters"].items()):
            lines.append(f"repro_sched_{name}_total {value}")
        for name in ("inflight", "memoized", "quarantined", "parked",
                     "poisoned_configs", "stragglers"):
            lines.append(f"repro_sched_{name} {scheduler[name]}")
        journal = scheduler.get("journal")
        if journal is not None:
            for name, value in sorted(journal.items()):
                lines.append(f"repro_journal_{name} {value}")
    if cache is not None:
        for name, value in sorted(cache.items()):
            lines.append(f"repro_cache_{name}_total {value}")
    return "\n".join(lines) + "\n"
