"""Long-running query service for the performance model (PR 8).

``advection-repro serve`` turns the repo's batch machinery into a
daemon: one listener answers newline-delimited JSON *and* HTTP/1.1,
warm queries resolve from memo/cache/journal tiers without touching a
worker, identical in-flight cold queries coalesce into a single
scheduler task, and cold-miss storms hit bounded admission instead of
an unbounded queue.  See ``docs/MODEL.md`` §14 for the architecture.

Modules
-------
``protocol``
    Wire framing, request parsing, response/error/progress documents.
``service``
    :class:`SimulationService` — cache tiers, coalescing, admission,
    timeouts, drain.
``server``
    :class:`ServeDaemon` — the dual-protocol listener and signal
    handling.
``client``
    :class:`ServeClient` — a small blocking client (tests, scripts,
    benchmarks).
``metrics``
    Counters + latency histograms and the Prometheus text renderer.
"""

from repro.serve.client import ServeClient, ServeError
from repro.serve.protocol import PROTOCOL_VERSION, ProtocolError
from repro.serve.server import ServeDaemon, serve
from repro.serve.service import SimulationService

__all__ = [
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ServeClient",
    "ServeDaemon",
    "ServeError",
    "SimulationService",
    "serve",
]
