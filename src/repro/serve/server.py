"""The daemon: one listener speaking NDJSON and HTTP/1.1.

:class:`ServeDaemon` binds a TCP port (and/or a unix socket) and sniffs
the first line of every connection: an HTTP request line gets a minimal
one-shot HTTP/1.1 exchange (``GET /healthz``, ``GET /metrics``,
``GET /stats``, ``POST /run``, ``POST /sweep``); anything else is
treated as the first request of a persistent newline-delimited-JSON
session (pipelining friendly: clients may write many request lines
before reading responses — they come back in order).

Shutdown contract (SIGTERM/SIGINT): stop accepting, close idle
connections, let busy connections finish their current request and
write the response, then drain the service — which flushes the journal
— and exit.  A client mid-simulation at SIGTERM still gets its answer,
and the journal left behind replays warm on the next start.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import logging
import os
import re
import signal
from typing import Any, Dict, List, Optional, Set

from repro.serve import protocol
from repro.serve.protocol import MAX_LINE_BYTES, ProtocolError
from repro.serve.service import SimulationService

__all__ = ["ServeDaemon", "serve"]

log = logging.getLogger("repro.serve")

#: First-line sniff: an HTTP request line routes the whole connection.
_HTTP_LINE = re.compile(
    rb"^(GET|HEAD|POST|PUT|DELETE|OPTIONS|PATCH) \S+ HTTP/1\.[01]\r?\n$"
)

#: Largest accepted HTTP POST body (sweeps are bounded anyway).
_MAX_HTTP_BODY = 8 << 20

_HTTP_REASON = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: Structured error kind -> HTTP status for the REST surface.
_KIND_STATUS = {
    "protocol": 400,
    "bad-request": 400,
    "invalid-config": 400,
    "poisoned": 422,
    "busy": 429,
    "draining": 503,
    "timeout": 504,
    "scheduler-error": 500,
    "failed": 500,
}


class _Conn:
    """Book-keeping for one live connection (drain coordination)."""

    __slots__ = ("writer", "busy")

    def __init__(self, writer: asyncio.StreamWriter):
        self.writer = writer
        self.busy = False


class ServeDaemon:
    """Listener + connection handling around one SimulationService."""

    def __init__(
        self,
        service: SimulationService,
        host: str = "127.0.0.1",
        port: Optional[int] = 0,
        socket_path: Optional[str] = None,
        ready_file: Optional[str] = None,
        drain_grace_s: float = 30.0,
    ):
        if port is None and socket_path is None:
            raise ValueError("need a TCP port or a unix socket path")
        self.service = service
        self.host = host
        self.port = port
        self.socket_path = socket_path
        self.ready_file = ready_file
        self.drain_grace_s = drain_grace_s
        self.bound_port: Optional[int] = None
        self._servers: List[asyncio.AbstractServer] = []
        self._conns: Set[_Conn] = set()
        self._conn_tasks: Set["asyncio.Task"] = set()
        self._stop_event: Optional[asyncio.Event] = None
        self._draining = False

    # -- lifecycle ------------------------------------------------------------
    async def start(self) -> None:
        self._stop_event = asyncio.Event()
        if self.port is not None:
            srv = await asyncio.start_server(
                self._on_connection, self.host, self.port,
                limit=MAX_LINE_BYTES,
            )
            self._servers.append(srv)
            self.bound_port = srv.sockets[0].getsockname()[1]
        if self.socket_path is not None:
            srv = await asyncio.start_unix_server(
                self._on_connection, path=self.socket_path,
                limit=MAX_LINE_BYTES,
            )
            self._servers.append(srv)
        self._write_ready_file()
        where = []
        if self.bound_port is not None:
            where.append(f"{self.host}:{self.bound_port}")
        if self.socket_path is not None:
            where.append(self.socket_path)
        print(f"advection-repro serve: listening on {' and '.join(where)}",
              flush=True)

    def _write_ready_file(self) -> None:
        if self.ready_file is None:
            return
        doc = {
            "host": self.host,
            "port": self.bound_port,
            "socket": self.socket_path,
            "pid": os.getpid(),
        }
        tmp = self.ready_file + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(doc, fh)
        os.replace(tmp, self.ready_file)

    def request_shutdown(self) -> None:
        """Signal-safe (via call_soon_threadsafe) drain trigger."""
        if self._stop_event is not None:
            self._stop_event.set()

    def _install_signals(self, loop: asyncio.AbstractEventLoop) -> None:
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, self.request_shutdown)
            except (NotImplementedError, RuntimeError):
                signal.signal(
                    sig,
                    lambda *_: loop.call_soon_threadsafe(
                        self.request_shutdown
                    ),
                )

    async def run(self) -> int:
        """start(), serve until SIGTERM/SIGINT/request_shutdown, drain."""
        await self.start()
        self._install_signals(asyncio.get_running_loop())
        await self._stop_event.wait()
        return await self.shutdown()

    async def shutdown(self) -> int:
        """Graceful drain; 0 when every in-flight job finished in time."""
        log.info("draining: refusing new work, finishing in-flight jobs")
        self._draining = True
        for srv in self._servers:
            srv.close()
        self.service.begin_drain()
        # Idle connections (blocked waiting for a request line) are cut
        # now; busy ones finish their request and exit their loop.
        for conn in list(self._conns):
            if not conn.busy:
                conn.writer.close()
        if self._conn_tasks:
            await asyncio.wait(self._conn_tasks, timeout=self.drain_grace_s)
        clean = await self.service.drain(self.drain_grace_s)
        for srv in self._servers:
            with contextlib.suppress(Exception):
                await srv.wait_closed()
        for conn in list(self._conns):
            conn.writer.close()
        if self.socket_path is not None:
            with contextlib.suppress(OSError):
                os.unlink(self.socket_path)
        if self.ready_file is not None:
            with contextlib.suppress(OSError):
                os.unlink(self.ready_file)
        log.info("drained %s", "clean" if clean else "with stragglers")
        return 0 if clean else 1

    # -- connection handling --------------------------------------------------
    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        metrics = self.service.metrics
        metrics.inc("connections")
        metrics.gauge_add("active_connections", 1)
        conn = _Conn(writer)
        self._conns.add(conn)
        try:
            try:
                first = await reader.readline()
            except ValueError:
                await self._reject_oversize(writer)
                return
            if not first:
                return
            if _HTTP_LINE.match(first):
                metrics.inc("http_requests")
                await self._handle_http(first, reader, writer)
            else:
                await self._ndjson_loop(first, reader, writer, conn)
        except (ConnectionResetError, BrokenPipeError,
                asyncio.IncompleteReadError):
            pass
        except Exception:
            log.exception("connection handler failed")
        finally:
            self._conns.discard(conn)
            metrics.gauge_add("active_connections", -1)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _reject_oversize(self, writer: asyncio.StreamWriter) -> None:
        """A line blew the stream limit: answer once, then hang up (the
        byte stream is no longer in sync with line framing)."""
        self.service.metrics.inc("protocol_errors")
        writer.write(protocol.encode_message(protocol.error_response(
            None, "protocol",
            f"request line exceeds {MAX_LINE_BYTES} bytes",
        )))
        with contextlib.suppress(Exception):
            await writer.drain()

    # -- NDJSON ---------------------------------------------------------------
    async def _ndjson_loop(
        self,
        first: bytes,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        conn: _Conn,
    ) -> None:
        line = first
        while line:
            if line.strip():
                try:
                    doc = protocol.decode_line(line)
                except ProtocolError as exc:
                    # Torn/garbage line: answer with a structured error
                    # and keep the session alive (framing still holds —
                    # we consumed through the newline).
                    self.service.metrics.inc("protocol_errors")
                    writer.write(protocol.encode_message(
                        protocol.error_response(None, exc.kind, str(exc))
                    ))
                    await writer.drain()
                else:
                    conn.busy = True
                    try:
                        emit = None
                        if isinstance(doc, dict) and doc.get("stream"):
                            async def emit(event: Dict[str, Any]) -> None:
                                writer.write(protocol.encode_message(event))
                                await writer.drain()
                        response = await self.service.handle(doc, emit)
                        writer.write(protocol.encode_message(response))
                        await writer.drain()
                    finally:
                        conn.busy = False
            if self._draining:
                return
            try:
                line = await reader.readline()
            except ValueError:
                await self._reject_oversize(writer)
                return

    # -- HTTP/1.1 -------------------------------------------------------------
    async def _handle_http(
        self,
        first: bytes,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        parts = first.decode("latin-1").strip().split(" ")
        method, path = parts[0], parts[1]
        headers: Dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()

        status, body, ctype = await self._http_route(
            method, path, headers, reader
        )
        reason = _HTTP_REASON.get(status, "Unknown")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {ctype}\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1"))
        if method != "HEAD":
            writer.write(body)
        await writer.drain()

    async def _http_route(self, method, path, headers, reader):
        """Returns ``(status, body_bytes, content_type)``."""
        path = path.split("?", 1)[0]
        if method in ("GET", "HEAD"):
            if path == "/healthz":
                if self.service.draining:
                    return 503, b"draining\n", "text/plain; charset=utf-8"
                return 200, b"ok\n", "text/plain; charset=utf-8"
            if path == "/metrics":
                text = self.service.render_metrics()
                return 200, text.encode("utf-8"), "text/plain; charset=utf-8"
            if path == "/stats":
                body = json.dumps(self.service.stats_body()).encode("utf-8")
                return 200, body, "application/json"
            return 404, b'{"error": "not found"}\n', "application/json"
        if method == "POST" and path in ("/run", "/sweep"):
            try:
                length = int(headers.get("content-length", "0"))
            except ValueError:
                length = -1
            if length < 0 or length > _MAX_HTTP_BODY:
                return 413, b'{"error": "bad content-length"}\n', \
                    "application/json"
            raw = await reader.readexactly(length) if length else b""
            try:
                doc = json.loads(raw.decode("utf-8")) if raw else {}
            except (UnicodeDecodeError, json.JSONDecodeError):
                doc = None
            if not isinstance(doc, dict):
                body = json.dumps(protocol.error_response(
                    None, "protocol", "POST body must be a JSON object"
                )).encode("utf-8")
                return 400, body + b"\n", "application/json"
            doc.setdefault("verb", path[1:])
            doc.pop("stream", None)  # progress streaming is NDJSON-only
            response = await self.service.handle(doc, None)
            status = 200
            if not response.get("ok"):
                kind = (response.get("error") or {}).get("type", "failed")
                status = _KIND_STATUS.get(kind, 500)
            body = json.dumps(response).encode("utf-8") + b"\n"
            return status, body, "application/json"
        return 405, b'{"error": "method not allowed"}\n', "application/json"


def serve(
    host: str = "127.0.0.1",
    port: Optional[int] = 0,
    socket_path: Optional[str] = None,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    journal: Optional[str] = None,
    max_inflight: int = 8,
    timeout_s: Optional[float] = 300.0,
    ready_file: Optional[str] = None,
    drain_grace_s: float = 30.0,
) -> int:
    """Blocking entry point: build the service, run the daemon to drain."""
    service = SimulationService(
        jobs=jobs,
        cache_dir=cache_dir,
        journal=journal,
        max_inflight=max_inflight,
        default_timeout_s=timeout_s,
    )
    daemon = ServeDaemon(
        service,
        host=host,
        port=port,
        socket_path=socket_path,
        ready_file=ready_file,
        drain_grace_s=drain_grace_s,
    )
    try:
        return asyncio.run(daemon.run())
    finally:
        service.close()
