"""A small blocking client for the serve daemon's NDJSON protocol.

:class:`ServeClient` keeps one persistent connection and speaks the
line protocol synchronously — right for tests, scripts and the
throughput benchmark.  :meth:`ServeClient.pipeline` writes a window of
requests before reading any response, which is how the warm path
reaches its 10k+/s figure: per-query cost collapses to one memo lookup
plus a share of a batched read/write syscall.

Example::

    from repro.serve.client import ServeClient

    with ServeClient("127.0.0.1", 7753) as c:
        body = c.run({"machine": "lens", "impl": "nonblocking",
                      "cores": 16, "domain": 16, "steps": 8})
        print(body["result"]["elapsed_s"], body["source"])
"""

from __future__ import annotations

import json
import socket
from typing import Any, Callable, Dict, Iterable, List, Optional

from repro.serve import protocol

__all__ = ["ServeClient", "ServeError"]


class ServeError(RuntimeError):
    """A structured error response from the daemon."""

    def __init__(self, kind: str, message: str):
        super().__init__(f"[{kind}] {message}")
        self.kind = kind


class ServeClient:
    """One blocking NDJSON connection to a serve daemon."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: Optional[int] = None,
        socket_path: Optional[str] = None,
        timeout_s: Optional[float] = 30.0,
    ):
        if socket_path is not None:
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._sock.settimeout(timeout_s)
            self._sock.connect(socket_path)
        else:
            if port is None:
                raise ValueError("need a port or a socket_path")
            self._sock = socket.create_connection(
                (host, port), timeout=timeout_s
            )
            self._sock.setsockopt(
                socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
            )
        self._rfile = self._sock.makefile("rb")
        self._next_id = 0

    # -- plumbing -------------------------------------------------------------
    def close(self) -> None:
        try:
            self._rfile.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _send(self, doc: Dict[str, Any]) -> None:
        self._sock.sendall(protocol.encode_message(doc))

    def _recv(self) -> Dict[str, Any]:
        line = self._rfile.readline()
        if not line:
            raise ConnectionError("daemon closed the connection")
        return json.loads(line)

    def request(
        self,
        doc: Dict[str, Any],
        on_progress: Optional[Callable[[Dict[str, Any]], None]] = None,
    ) -> Dict[str, Any]:
        """Send one request, skim progress events, return the body.

        Raises :class:`ServeError` on a structured error response.
        """
        if "id" not in doc:
            self._next_id += 1
            doc = dict(doc, id=self._next_id)
        self._send(doc)
        while True:
            msg = self._recv()
            if msg.get("event") == "progress":
                if on_progress is not None:
                    on_progress(msg)
                continue
            if not msg.get("ok"):
                err = msg.get("error") or {}
                raise ServeError(
                    err.get("type", "failed"), err.get("message", "")
                )
            return msg

    # -- verbs ----------------------------------------------------------------
    def ping(self) -> Dict[str, Any]:
        return self.request({"verb": "ping"})

    def stats(self) -> Dict[str, Any]:
        return self.request({"verb": "stats"})

    def run(
        self,
        config: Dict[str, Any],
        replicas: int = 1,
        timeout_s: Optional[float] = None,
        stream: bool = False,
        on_progress: Optional[Callable[[Dict[str, Any]], None]] = None,
    ) -> Dict[str, Any]:
        doc: Dict[str, Any] = {"verb": "run", "config": config}
        if replicas != 1:
            doc["replicas"] = replicas
        if timeout_s is not None:
            doc["timeout"] = timeout_s
        if stream:
            doc["stream"] = True
        return self.request(doc, on_progress=on_progress)

    def sweep(
        self,
        configs: List[Dict[str, Any]],
        timeout_s: Optional[float] = None,
        stream: bool = False,
        on_progress: Optional[Callable[[Dict[str, Any]], None]] = None,
    ) -> Dict[str, Any]:
        doc: Dict[str, Any] = {"verb": "sweep", "configs": configs}
        if timeout_s is not None:
            doc["timeout"] = timeout_s
        if stream:
            doc["stream"] = True
        return self.request(doc, on_progress=on_progress)

    def pipeline(
        self, docs: Iterable[Dict[str, Any]]
    ) -> List[Dict[str, Any]]:
        """Write every request, then read every response (in order).

        No progress events are expected (don't set ``stream``); error
        responses come back in-slot rather than raising, so one bad
        request doesn't strand the remaining reads.
        """
        sent = 0
        payload = bytearray()
        for doc in docs:
            if "id" not in doc:
                self._next_id += 1
                doc = dict(doc, id=self._next_id)
            payload += protocol.encode_message(doc)
            sent += 1
        self._sock.sendall(bytes(payload))
        return [self._recv() for _ in range(sent)]
