"""The simulation service: cache tiers, coalescing, admission, drain.

One :class:`SimulationService` sits between the listeners
(:mod:`repro.serve.server`) and the batch machinery (PR 5's
:class:`~repro.sched.Scheduler` over PR 2's content-addressed
:class:`~repro.cache.RunCache`).  Every query resolves through a fixed
ladder, cheapest tier first:

1. **Request-signature memo** — the canonicalized wire config of an
   already-answered query maps straight to its response body: no
   ``RunConfig`` construction, no hashing.  This is the 10k+/s warm path.
2. **Key memo** — a different spelling of a known config (alias fields,
   equivalent defaults) hits the in-memory body memo by content key.
3. **Run cache / journal probe** — warm on-disk entries
   (:meth:`RunCache.get` / a journal ``get``) are replayed without
   touching a worker and promoted into the memo tiers.
4. **Coalesced wait** — a query whose key is already simulating awaits
   the in-flight job; N connections asking for the same cold config
   cause exactly one scheduler task.
5. **Admitted simulation** — a genuinely cold query takes one of
   ``max_inflight`` admission slots and runs ``Scheduler.map`` on a
   worker thread off the event loop.  When every slot is busy the query
   is *rejected* with a structured ``busy`` error (HTTP 429) instead of
   queueing unboundedly — a cold-miss storm degrades into fast failures
   while warm traffic keeps flowing.

Robustness contract: per-request timeouts detach the requester (the
simulation itself keeps running and lands in cache/journal for the next
asker), ``begin_drain`` flips the service into refuse-new/finish-
in-flight mode (SIGTERM), and simulator/scheduler failures — including
:class:`~repro.sched.PoisonedConfigError` — come back as structured
error payloads on a healthy connection.
"""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Awaitable, Callable, Dict, List, Optional, Set, Tuple

from repro.cache import RunCache, config_key
from repro.core.config import RunConfig, RunResult
from repro.sched import PoisonedConfigError, Scheduler, SchedulerError
from repro.sched.task import TaskRecord
from repro.serve import protocol
from repro.serve.metrics import ServiceMetrics
from repro.serve.protocol import ProtocolError, Request

__all__ = ["SimulationService"]

#: Emit callback type: writes one progress document to the client.
Emitter = Callable[[Dict[str, Any]], Awaitable[None]]


def _signature(doc: Any) -> Any:
    """A hashable canonical form of one wire config (dict order free)."""
    if isinstance(doc, dict):
        return tuple(sorted((k, _signature(v)) for k, v in doc.items()))
    if isinstance(doc, (list, tuple)):
        return tuple(_signature(v) for v in doc)
    return doc


class SimulationService:
    """Query engine over one scheduler + run cache (asyncio side)."""

    def __init__(
        self,
        jobs: int = 1,
        cache_dir: Optional[str] = None,
        journal: Optional[str] = None,
        max_inflight: int = 8,
        default_timeout_s: Optional[float] = 300.0,
        scheduler: Optional[Scheduler] = None,
    ):
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        self.sched = scheduler or Scheduler(
            jobs=jobs, cache_dir=cache_dir, journal=journal
        )
        self.cache = RunCache(cache_dir) if cache_dir is not None else None
        self.max_inflight = int(max_inflight)
        self.default_timeout_s = default_timeout_s
        self.metrics = ServiceMetrics()
        #: request-signature -> result body (tier 1)
        self._sig_memo: Dict[Any, Dict[str, Any]] = {}
        #: content key / job key -> result body (tier 2)
        self._memo: Dict[str, Dict[str, Any]] = {}
        #: job key -> in-flight asyncio task (coalescing target, tier 4)
        self._inflight: Dict[str, "asyncio.Task"] = {}
        #: admission slots currently held by cold jobs (tier 5)
        self._cold_jobs = 0
        #: every live cold-job task, awaited by drain()
        self._jobs: Set["asyncio.Task"] = set()
        self._exec = ThreadPoolExecutor(
            max_workers=self.max_inflight,
            thread_name_prefix="repro-serve",
        )
        self._draining = False
        self._closed = False
        #: content key -> [(loop, queue)]: progress listeners fed by the
        #: scheduler completion hook (foreign threads), guarded by a
        #: plain lock because the hook never re-enters the service.
        self._listeners: Dict[str, List[Tuple[Any, "asyncio.Queue"]]] = {}
        self._hook_lock = threading.Lock()
        self.sched.add_completion_hook(self._on_task_done)

    # -- lifecycle ------------------------------------------------------------
    @property
    def draining(self) -> bool:
        return self._draining

    def begin_drain(self) -> None:
        """Refuse new queries; in-flight jobs keep running."""
        self._draining = True

    async def drain(self, grace_s: float = 30.0) -> bool:
        """Wait for in-flight jobs, then flush and close; True when clean.

        Jobs still running after ``grace_s`` are abandoned (their worker
        results land in the cache/journal whenever they do finish, but
        the service closes without them).
        """
        self.begin_drain()
        jobs = list(self._jobs)
        clean = True
        if jobs:
            done, pending = await asyncio.wait(jobs, timeout=grace_s)
            clean = not pending
        self.close()
        return clean

    def close(self) -> None:
        """Release the worker pool and journal (flushes pending lines)."""
        if self._closed:
            return
        self._closed = True
        self._draining = True
        self.sched.remove_completion_hook(self._on_task_done)
        self._exec.shutdown(wait=False)
        self.sched.close()

    # -- progress hook bridge -------------------------------------------------
    def _on_task_done(self, rec: TaskRecord) -> None:
        """Scheduler completion hook (fires on worker/drainer threads)."""
        with self._hook_lock:
            entries = self._listeners.get(rec.key)
            if not entries:
                return
            targets = list(entries)
        event = (rec.key, rec.state.value)
        for loop, queue in targets:
            try:
                loop.call_soon_threadsafe(queue.put_nowait, event)
            except RuntimeError:
                pass  # loop already closed (drain race): drop the event

    def _listen(self, keys, loop, queue) -> None:
        with self._hook_lock:
            for key in keys:
                self._listeners.setdefault(key, []).append((loop, queue))

    def _unlisten(self, keys, queue) -> None:
        with self._hook_lock:
            for key in keys:
                entries = self._listeners.get(key)
                if not entries:
                    continue
                self._listeners[key] = [
                    e for e in entries if e[1] is not queue
                ]
                if not self._listeners[key]:
                    del self._listeners[key]

    # -- result bodies --------------------------------------------------------
    def _result_body(self, cfg: RunConfig, result: RunResult) -> Dict[str, Any]:
        body = protocol.result_to_dict(result)
        body["gflops"] = result.gflops
        body["seconds_per_step"] = result.seconds_per_step
        return body

    def _body_from_payload(
        self, cfg: RunConfig, payload: Dict[str, Any]
    ) -> Dict[str, Any]:
        """A result body from a journal payload (exact floats)."""
        result = RunResult(
            config=cfg,
            elapsed_s=float(payload["elapsed_s"]),
            phases={k: float(v) for k, v in payload["phases"].items()},
            comm_stats={k: int(v) for k, v in payload["comm_stats"].items()},
        )
        return self._result_body(cfg, result)

    # -- the query ladder -----------------------------------------------------
    def _probe_warm(self, key: str, cfg: RunConfig) -> Optional[Tuple[Dict[str, Any], str]]:
        """Tiers 2-3: memo, then run cache, then journal. No worker."""
        body = self._memo.get(key)
        if body is not None:
            self.metrics.inc("warm_memo_hits")
            return body, "memo"
        if self.cache is not None:
            cached = self.cache.get(cfg, record_miss=False)
            if cached is not None:
                body = self._result_body(cfg, cached)
                self._memo[key] = body
                self.metrics.inc("warm_cache_hits")
                return body, "cache"
        journal = self.sched.journal
        if journal is not None:
            payload = journal.get(key) if key in journal else None
            if payload is not None:
                try:
                    body = self._body_from_payload(cfg, payload)
                except (KeyError, TypeError, ValueError):
                    return None  # ill-shaped journal payload: simulate
                self._memo[key] = body
                self.metrics.inc("warm_cache_hits")
                return body, "journal"
        return None

    def _admit(self) -> None:
        """Claim one cold-job admission slot or raise a structured error."""
        if self._draining:
            self.metrics.inc("rejected_draining")
            raise ProtocolError("service is draining", kind="draining")
        if self._cold_jobs >= self.max_inflight:
            self.metrics.inc("rejected_busy")
            raise ProtocolError(
                f"all {self.max_inflight} simulation slots are busy; "
                "retry later (warm queries are still served)",
                kind="busy",
            )
        self._cold_jobs += 1
        self.metrics.inc("admitted")
        self.metrics.gauge_add("inflight", 1)

    def _release(self) -> None:
        self._cold_jobs -= 1
        self.metrics.gauge_add("inflight", -1)

    def _spawn_job(
        self, job_key: str, work: Callable[[], Dict[str, Any]]
    ) -> "asyncio.Task":
        """Dispatch an admitted cold job onto the worker thread pool.

        The returned task owns the admission slot; it is registered for
        coalescing under ``job_key`` and for ``drain()``.  The task's
        body memoizes on success.  Requesters await it through
        ``asyncio.shield`` so a per-request timeout detaches the
        requester without cancelling the shared job.
        """
        loop = asyncio.get_running_loop()

        async def job() -> Dict[str, Any]:
            try:
                body = await loop.run_in_executor(self._exec, work)
            finally:
                self._inflight.pop(job_key, None)
                self._release()
            self._memo[job_key] = body
            return body

        task = loop.create_task(job())
        self._inflight[job_key] = task
        self._jobs.add(task)
        task.add_done_callback(self._jobs.discard)
        return task

    def _run_one(self, cfg: RunConfig) -> Dict[str, Any]:
        """Worker-thread body of a single-config cold job."""
        result = self.sched.map([cfg], return_exceptions=True)[0]
        if isinstance(result, BaseException):
            raise result
        return self._result_body(cfg, result)

    def _run_replicated(self, cfg: RunConfig, replicas: int) -> Dict[str, Any]:
        """Worker-thread body of a Monte-Carlo replication job.

        Exactly :func:`repro.core.runner.run_replicated` with this
        service's scheduler: replica 0 keeps the root seed, stats are
        computed over every replica's ``elapsed_s`` — so the served
        stats reproduce a direct ``run_replicated`` call bit-for-bit.
        """
        from repro.perturb.rng import derive_seed
        from repro.perturb.stats import replication_stats

        seeded = [
            cfg.with_(seed=derive_seed(cfg.seed, i)) for i in range(replicas)
        ]
        results = self.sched.map(seeded)
        stats = replication_stats([r.elapsed_s for r in results])
        body = self._result_body(cfg, results[0])
        body["stats"] = dict(stats)
        body["replicas"] = replicas
        return body

    def _run_batch(self, cfgs: List[RunConfig]) -> List[Any]:
        """Worker-thread body of a sweep job (exceptions in-slot)."""
        return self.sched.map(cfgs, return_exceptions=True)

    # -- request handling -----------------------------------------------------
    async def handle(
        self, doc: Dict[str, Any], emit: Optional[Emitter] = None
    ) -> Dict[str, Any]:
        """Answer one decoded request document.

        ``emit`` (when given) receives progress documents for streamed
        sweep/replica jobs before the final response is returned.  Every
        failure mode — protocol, validation, poisoning, timeout,
        backpressure — returns a structured error response; nothing
        raises to the connection handler except transport errors from
        ``emit`` itself.
        """
        t0 = time.perf_counter()
        self.metrics.inc("requests")
        req_id = doc.get("id") if isinstance(doc, dict) else None
        warm = False
        try:
            response, warm = await self._dispatch(doc, emit)
        except ProtocolError as exc:
            self.metrics.inc("responses_error")
            if exc.kind == "protocol":
                self.metrics.inc("protocol_errors")
            return protocol.error_response(req_id, exc.kind, str(exc))
        except asyncio.TimeoutError:
            self.metrics.inc("timeouts")
            self.metrics.inc("responses_error")
            return protocol.error_response(
                req_id, "timeout", "request timed out; the simulation "
                "continues and will be served warm once finished"
            )
        except PoisonedConfigError as exc:
            self.metrics.inc("responses_error")
            return protocol.error_response(req_id, "poisoned", str(exc))
        except SchedulerError as exc:
            self.metrics.inc("responses_error")
            return protocol.error_response(req_id, "scheduler-error", str(exc))
        except ValueError as exc:
            self.metrics.inc("responses_error")
            return protocol.error_response(req_id, "invalid-config", str(exc))
        self.metrics.inc("responses_ok")
        self.metrics.observe_latency(time.perf_counter() - t0, warm=warm)
        return response

    async def _dispatch(
        self, doc: Dict[str, Any], emit: Optional[Emitter]
    ) -> Tuple[Dict[str, Any], bool]:
        """Route one document; returns ``(response, served_warm)``."""
        # Tier 1: the signature memo answers repeat run queries without
        # re-validating, re-constructing or re-hashing the config.
        verb = doc.get("verb")
        sig = None
        if verb == "run":
            sig = _signature(
                (doc.get("config"), doc.get("replicas", 1))
            )
            body = self._sig_memo.get(sig)
            if body is not None:
                self.metrics.inc("warm_memo_hits")
                return (
                    protocol.ok_response(
                        doc.get("id"), {"result": body, "source": "memo"}
                    ),
                    True,
                )

        req = protocol.parse_request(doc)
        if req.verb == "ping":
            return (
                protocol.ok_response(req.id, {
                    "pong": True,
                    "version": protocol.PROTOCOL_VERSION,
                    "draining": self._draining,
                }),
                True,
            )
        if req.verb == "stats":
            return protocol.ok_response(req.id, self.stats_body()), True
        if req.verb == "run":
            return await self._handle_run(req, sig, emit)
        return await self._handle_sweep(req, emit)

    def _timeout(self, req: Request) -> Optional[float]:
        return req.timeout_s if req.timeout_s is not None else self.default_timeout_s

    async def _handle_run(
        self, req: Request, sig: Any, emit: Optional[Emitter]
    ) -> Tuple[Dict[str, Any], bool]:
        cfg = req.configs[0]
        key = config_key(cfg)
        job_key = key if req.replicas == 1 else f"{key}:replicas={req.replicas}"

        if req.replicas == 1:
            probe = self._probe_warm(key, cfg)
            if probe is not None:
                body, source = probe
                if sig is not None:
                    self._sig_memo[sig] = body
                return (
                    protocol.ok_response(
                        req.id, {"result": body, "source": source}
                    ),
                    True,
                )
        else:
            body = self._memo.get(job_key)
            if body is not None:
                self.metrics.inc("warm_memo_hits")
                if sig is not None:
                    self._sig_memo[sig] = body
                return (
                    protocol.ok_response(
                        req.id, {"result": body, "source": "memo"}
                    ),
                    True,
                )

        # Eager feasibility check: an invalid point must not burn an
        # admission slot or a worker round-trip.
        from repro.sched import validate_config

        try:
            validate_config(cfg)
        except (KeyError, ValueError) as exc:
            raise ProtocolError(str(exc), kind="invalid-config")

        task = self._inflight.get(job_key)
        coalesced = task is not None
        if coalesced:
            self.metrics.inc("coalesced")
        else:
            self._admit()
            if req.replicas == 1:
                task = self._spawn_job(job_key, lambda: self._run_one(cfg))
            else:
                task = self._spawn_job(
                    job_key,
                    lambda: self._run_replicated(cfg, req.replicas),
                )
        if req.replicas > 1 and req.stream and emit is not None and not coalesced:
            body = await self._stream_job(req, task, self._replica_keys(cfg, req.replicas), emit)
        else:
            body = await asyncio.wait_for(
                asyncio.shield(task), self._timeout(req)
            )
        if sig is not None:
            self._sig_memo[sig] = body
        return (
            protocol.ok_response(
                req.id,
                {
                    "result": body,
                    "source": "coalesced" if coalesced else "simulated",
                },
            ),
            False,
        )

    def _replica_keys(self, cfg: RunConfig, replicas: int) -> List[str]:
        from repro.perturb.rng import derive_seed

        return [
            config_key(cfg.with_(seed=derive_seed(cfg.seed, i)))
            for i in range(replicas)
        ]

    async def _handle_sweep(
        self, req: Request, emit: Optional[Emitter]
    ) -> Tuple[Dict[str, Any], bool]:
        cfgs = req.configs
        keys = [config_key(c) for c in cfgs]
        distinct = list(dict.fromkeys(keys))

        # Fully warm sweeps resolve from the memo/cache tiers with no
        # admission slot; one cold key sends the whole batch through the
        # scheduler (which re-resolves the warm ones itself).
        slots: List[Optional[Dict[str, Any]]] = []
        for key, cfg in zip(keys, cfgs):
            probe = self._probe_warm(key, cfg)
            slots.append(probe[0] if probe is not None else None)
        warm_keys = {k for k, s in zip(keys, slots) if s is not None}
        cold = [k for k in distinct if k not in warm_keys]
        if not cold:
            body = {
                "results": list(slots),
                "total": len(cfgs),
                "distinct": len(distinct),
                "warm": len(distinct),
                "source": "cache",
            }
            return protocol.ok_response(req.id, body), True

        self._admit()
        task = self._spawn_sweep(cfgs)
        if req.stream and emit is not None:
            results = await self._stream_job(req, task, cold, emit,
                                             pre_done=len(distinct) - len(cold))
        else:
            results = await asyncio.wait_for(
                asyncio.shield(task), self._timeout(req)
            )
        out: List[Dict[str, Any]] = []
        errors = 0
        for cfg, item in zip(cfgs, results):
            if isinstance(item, BaseException):
                errors += 1
                kind = (
                    "poisoned" if isinstance(item, PoisonedConfigError)
                    else "invalid-config"
                    if isinstance(item, (ValueError, KeyError))
                    else "failed"
                )
                out.append({"ok": False, "error": protocol.error_body(
                    kind, str(item))})
            else:
                out.append(item)
        body = {
            "results": out,
            "total": len(cfgs),
            "distinct": len(distinct),
            "warm": len(distinct) - len(cold),
            "errors": errors,
            "source": "simulated",
        }
        return protocol.ok_response(req.id, body), False

    def _spawn_sweep(self, cfgs: List[RunConfig]) -> "asyncio.Task":
        """An admitted sweep job: map the batch, bodies per slot."""

        def work() -> List[Any]:
            results = self._run_batch(cfgs)
            return [
                r if isinstance(r, BaseException)
                else self._result_body(cfg, r)
                for cfg, r in zip(cfgs, results)
            ]

        # Sweep jobs are not coalesced whole (their configs dedup inside
        # the scheduler); key them uniquely so coalescing stays off.
        job_key = f"sweep:{id(cfgs)}:{time.monotonic_ns()}"
        task = self._spawn_job(job_key, work)
        # Sweeps are never re-served from the job memo (the per-config
        # memo already covers every slot).
        task.add_done_callback(lambda _t: self._memo.pop(job_key, None))
        return task

    async def _stream_job(
        self,
        req: Request,
        task: "asyncio.Task",
        pending_keys: List[str],
        emit: Emitter,
        pre_done: int = 0,
    ) -> Any:
        """Await a job while forwarding per-task progress events.

        ``pending_keys`` are the distinct content keys expected to go
        terminal after dispatch; ``pre_done`` counts keys that were
        already warm (reported as instantly done).  The scheduler's
        completion hooks feed a queue via ``call_soon_threadsafe``;
        events are re-emitted in arrival order.  On timeout the listener
        unregisters and the job keeps running detached.
        """
        loop = asyncio.get_running_loop()
        queue: "asyncio.Queue" = asyncio.Queue()
        pending = set(pending_keys)
        total = len(pending) + pre_done
        done_count = pre_done
        self._listen(pending, loop, queue)
        deadline = None
        timeout = self._timeout(req)
        if timeout is not None:
            deadline = loop.time() + timeout
        shielded = asyncio.shield(task)
        get_task: Optional["asyncio.Task"] = None
        try:
            if pre_done:
                self.metrics.inc("progress_events")
                await emit(protocol.progress_event(
                    req.id, done_count, total, "", "warm"))
            while True:
                if get_task is None:
                    get_task = asyncio.ensure_future(queue.get())
                budget = None
                if deadline is not None:
                    budget = deadline - loop.time()
                    if budget <= 0:
                        raise asyncio.TimeoutError()
                done, _ = await asyncio.wait(
                    {shielded, get_task},
                    timeout=budget,
                    return_when=asyncio.FIRST_COMPLETED,
                )
                if not done:
                    raise asyncio.TimeoutError()
                if get_task in done:
                    key, state = get_task.result()
                    get_task = None
                    if key in pending:
                        pending.discard(key)
                        done_count += 1
                        self.metrics.inc("progress_events")
                        await emit(protocol.progress_event(
                            req.id, done_count, total, key, state))
                if shielded in done:
                    # Flush events already queued before returning.
                    while not queue.empty():
                        key, state = queue.get_nowait()
                        if key in pending:
                            pending.discard(key)
                            done_count += 1
                            self.metrics.inc("progress_events")
                            await emit(protocol.progress_event(
                                req.id, done_count, total, key, state))
                    return shielded.result()
        finally:
            self._unlisten(pending_keys, queue)
            if get_task is not None:
                get_task.cancel()

    # -- telemetry ------------------------------------------------------------
    def stats_body(self) -> Dict[str, Any]:
        """The ``stats`` verb / ``GET /stats`` document."""
        snap = self.sched.snapshot()
        return {
            "version": protocol.PROTOCOL_VERSION,
            "draining": self._draining,
            "service": self.metrics.to_dict(),
            "scheduler": snap,
            "cache": self.cache.stats() if self.cache is not None else None,
            "memo_entries": len(self._memo),
        }

    def render_metrics(self) -> str:
        """The ``GET /metrics`` Prometheus text."""
        from repro.serve.metrics import render_prometheus

        return render_prometheus(
            self.metrics.to_dict(),
            scheduler=self.sched.snapshot(),
            cache=self.cache.stats() if self.cache is not None else None,
        )
