"""Wire protocol of the simulation service.

One framing, two carriers: the daemon speaks **newline-delimited JSON**
(one request document per line, one or more response documents per line
each) and **HTTP/1.1** (the same documents as request/response bodies)
on the same listener — :mod:`repro.serve.server` sniffs the first line
of each connection to pick the carrier.

Documents
---------
A request is a JSON object::

    {"verb": "run",  "id": 7, "config": {...}}
    {"verb": "run",  "id": 8, "config": {...}, "replicas": 16}
    {"verb": "sweep", "id": 9, "configs": [{...}, ...], "stream": true}
    {"verb": "stats", "id": 10}
    {"verb": "ping", "id": 11}

``config`` carries one :class:`~repro.core.config.RunConfig` by value:
the machine by catalog name, the noise spec as the CLI's ``--noise``
string, everything else as plain scalars (see :func:`config_from_dict`).
Field values are validated here — unknown fields, functional/traced
runs (whose results cannot travel as scalars) and infeasible values are
rejected with a structured error before anything touches the scheduler.

A response echoes the request ``id``::

    {"id": 7, "ok": true, "result": {...}, "source": "cache", ...}
    {"id": 9, "event": "progress", "done": 3, "total": 12, ...}   # stream
    {"id": 8, "ok": false, "error": {"type": "busy", "message": "..."}}

Floats round-trip exactly: CPython's ``json`` renders a float with its
shortest round-trip repr and parses it back to the same double, so a
served result is *numerically identical* to the ``RunResult`` the
simulator produced.

Framing limits: an incoming line longer than :data:`MAX_LINE_BYTES` is
rejected (the connection is closed after a structured error — an
unbounded line is indistinguishable from a memory attack), and a sweep
request may carry at most :data:`MAX_SWEEP_CONFIGS` configs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.core.config import RunConfig, RunResult

__all__ = [
    "MAX_LINE_BYTES",
    "MAX_SWEEP_CONFIGS",
    "PROTOCOL_VERSION",
    "VERBS",
    "ProtocolError",
    "Request",
    "config_from_dict",
    "decode_line",
    "encode_message",
    "error_body",
    "error_response",
    "ok_response",
    "parse_request",
    "progress_event",
    "result_to_dict",
]

#: Protocol generation, echoed by ``ping`` and ``stats``.
PROTOCOL_VERSION = 1

#: Hard ceiling on one incoming request line (defends the reader buffer).
MAX_LINE_BYTES = 1 << 20

#: Hard ceiling on configs carried by one sweep request.
MAX_SWEEP_CONFIGS = 4096

#: Request verbs the service understands.
VERBS = ("run", "sweep", "stats", "ping")

#: RunConfig fields settable over the wire -> their request spelling.
_CONFIG_KEYS = {
    "machine": "machine",
    "impl": "impl",
    "implementation": "impl",  # alias
    "cores": "cores",
    "threads": "threads",
    "thickness": "thickness",
    "steps": "steps",
    "domain": "domain",
    "network": "network",
    "seed": "seed",
    "noise": "noise",
    "workload": "workload",
    "workload_params": "workload_params",
}

#: Config fields deliberately NOT servable (non-scalar results).
_REJECTED_CONFIG_KEYS = ("functional", "trace")


class ProtocolError(ValueError):
    """A malformed or unservable request document.

    ``kind`` names the structured error type returned to the client
    (``protocol`` for framing/JSON problems, ``bad-request`` for schema
    problems, ``invalid-config`` for values the simulator would reject).
    """

    def __init__(self, message: str, kind: str = "bad-request"):
        super().__init__(message)
        self.kind = kind


# -- framing ------------------------------------------------------------------
def encode_message(doc: Dict[str, Any]) -> bytes:
    """One response/request document as a single JSON line.

    ``ensure_ascii=False`` keeps unicode payloads compact; JSON string
    escaping guarantees the rendered document itself contains no raw
    newline, so the line framing can never tear.
    """
    return json.dumps(
        doc, ensure_ascii=False, separators=(",", ":")
    ).encode("utf-8") + b"\n"


def decode_line(line: bytes) -> Dict[str, Any]:
    """Parse one incoming line into a request document.

    Raises :class:`ProtocolError` (kind ``protocol``) on oversize lines,
    undecodable bytes, invalid JSON, or a non-object document.
    """
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(
            f"request line of {len(line)} bytes exceeds the "
            f"{MAX_LINE_BYTES}-byte limit",
            kind="protocol",
        )
    try:
        doc = json.loads(line.decode("utf-8"))
    except UnicodeDecodeError as exc:
        raise ProtocolError(f"request is not UTF-8: {exc}", kind="protocol")
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"request is not JSON: {exc}", kind="protocol")
    if not isinstance(doc, dict):
        raise ProtocolError(
            f"request must be a JSON object, got {type(doc).__name__}",
            kind="protocol",
        )
    return doc


# -- request schema -----------------------------------------------------------
@dataclass
class Request:
    """One validated request, ready for the service layer."""

    verb: str
    #: echoed verbatim in every response document (may be None)
    id: Any = None
    #: the configs to run (1 for ``run``, N for ``sweep``)
    configs: List[RunConfig] = field(default_factory=list)
    #: Monte-Carlo replication (``run`` only, requires a seeded config)
    replicas: int = 1
    #: per-request timeout override in seconds (None = service default)
    timeout_s: Optional[float] = None
    #: emit per-task progress events before the final response
    stream: bool = False


def _require_int(doc: Dict[str, Any], key: str, value: Any) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise ProtocolError(f"config field {key!r} must be an integer, "
                            f"got {value!r}")
    return value


def config_from_dict(d: Dict[str, Any]) -> RunConfig:
    """Build a :class:`RunConfig` from its wire representation.

    Accepted fields: ``machine`` (catalog name), ``impl`` (or
    ``implementation``), ``cores``, ``threads``, ``thickness``,
    ``steps``, ``domain`` (one int or ``[nx, ny, nz]``), ``network``,
    ``seed``, ``noise`` (the CLI's ``--noise`` string; ``"machine"``
    selects the machine's calibration), ``workload`` (registry key,
    default ``advection``) and ``workload_params`` (a JSON object of
    scalar knobs, e.g. ``{"rows": 65536}``).  Anything else — including
    ``functional`` and ``trace``, whose results cannot travel as JSON
    scalars — is rejected with a structured error.
    """
    from repro.machines import get_machine

    if not isinstance(d, dict):
        raise ProtocolError(
            f"config must be a JSON object, got {type(d).__name__}"
        )
    for key in _REJECTED_CONFIG_KEYS:
        if key in d:
            raise ProtocolError(
                f"config field {key!r} is not servable: {key} runs carry "
                "non-scalar artifacts that cannot travel over the wire"
            )
    unknown = sorted(k for k in d if k not in _CONFIG_KEYS)
    if unknown:
        raise ProtocolError(
            f"unknown config field(s) {unknown}; "
            f"accepted: {sorted(set(_CONFIG_KEYS))}"
        )
    norm = {}
    for key, value in d.items():
        canon = _CONFIG_KEYS[key]
        if canon in norm and norm[canon] != value:
            raise ProtocolError(
                f"config fields {key!r} and {canon!r} disagree"
            )
        norm[canon] = value
    for req in ("machine", "impl", "cores"):
        if req not in norm:
            raise ProtocolError(f"config field {req!r} is required")

    try:
        machine = get_machine(str(norm["machine"]))
    except (KeyError, ValueError) as exc:
        raise ProtocolError(f"unknown machine {norm['machine']!r}: {exc}",
                            kind="invalid-config")

    domain = norm.get("domain", 420)
    if isinstance(domain, int) and not isinstance(domain, bool):
        domain = (domain,) * 3
    elif (
        isinstance(domain, (list, tuple))
        and len(domain) == 3
        and all(isinstance(v, int) and not isinstance(v, bool) for v in domain)
    ):
        domain = tuple(domain)
    else:
        raise ProtocolError(
            f"config field 'domain' must be an int or [nx, ny, nz], "
            f"got {domain!r}"
        )

    seed = norm.get("seed")
    if seed is not None:
        seed = _require_int(norm, "seed", seed)
    noise = None
    noise_text = norm.get("noise")
    if noise_text is not None:
        from repro.perturb import NoiseSpec

        if not isinstance(noise_text, str):
            raise ProtocolError(
                f"config field 'noise' must be a spec string, "
                f"got {noise_text!r}"
            )
        try:
            if noise_text == "machine":
                noise = NoiseSpec.for_machine(machine.name)
            else:
                noise = NoiseSpec.parse(noise_text)
        except ValueError as exc:
            raise ProtocolError(str(exc), kind="invalid-config")

    network = norm.get("network", "mirror")
    if not isinstance(network, str):
        raise ProtocolError(f"config field 'network' must be a string, "
                            f"got {network!r}")
    workload = norm.get("workload", "advection")
    if not isinstance(workload, str):
        raise ProtocolError(f"config field 'workload' must be a string, "
                            f"got {workload!r}")
    wparams = norm.get("workload_params", {})
    if not isinstance(wparams, dict):
        raise ProtocolError(
            f"config field 'workload_params' must be a JSON object of "
            f"scalar knobs, got {wparams!r}"
        )
    try:
        return RunConfig(
            machine=machine,
            implementation=str(norm["impl"]),
            cores=_require_int(norm, "cores", norm["cores"]),
            threads_per_task=_require_int(norm, "threads",
                                          norm.get("threads", 1)),
            box_thickness=_require_int(norm, "thickness",
                                       norm.get("thickness", 1)),
            steps=_require_int(norm, "steps", norm.get("steps", 2)),
            domain=domain,
            network=network,
            seed=seed,
            noise=noise,
            workload=workload,
            workload_params=tuple(wparams.items()),
        )
    except ValueError as exc:
        # RunConfig.__post_init__ rejected the combination (thread
        # packing, node fill, noise-without-seed, ...).
        raise ProtocolError(str(exc), kind="invalid-config")


def parse_request(doc: Dict[str, Any]) -> Request:
    """Validate one decoded document into a :class:`Request`."""
    verb = doc.get("verb")
    if verb not in VERBS:
        raise ProtocolError(
            f"unknown verb {verb!r}; accepted: {list(VERBS)}"
        )
    req = Request(verb=verb, id=doc.get("id"))

    timeout = doc.get("timeout")
    if timeout is not None:
        if isinstance(timeout, bool) or not isinstance(timeout, (int, float)):
            raise ProtocolError(f"'timeout' must be a number, got {timeout!r}")
        if timeout <= 0:
            raise ProtocolError(f"'timeout' must be > 0, got {timeout!r}")
        req.timeout_s = float(timeout)

    if verb == "run":
        if "config" not in doc:
            raise ProtocolError("run request needs a 'config' object")
        req.configs = [config_from_dict(doc["config"])]
        replicas = doc.get("replicas", 1)
        replicas = _require_int(doc, "replicas", replicas)
        if replicas < 1:
            raise ProtocolError(f"'replicas' must be >= 1, got {replicas}")
        if replicas > 1 and req.configs[0].seed is None:
            raise ProtocolError(
                "'replicas' > 1 requires a seeded config (set 'seed')",
                kind="invalid-config",
            )
        req.replicas = replicas
        req.stream = bool(doc.get("stream", False))
    elif verb == "sweep":
        cfgs = doc.get("configs")
        if not isinstance(cfgs, list) or not cfgs:
            raise ProtocolError(
                "sweep request needs a non-empty 'configs' array"
            )
        if len(cfgs) > MAX_SWEEP_CONFIGS:
            raise ProtocolError(
                f"sweep of {len(cfgs)} configs exceeds the "
                f"{MAX_SWEEP_CONFIGS}-config limit"
            )
        req.configs = [config_from_dict(c) for c in cfgs]
        req.stream = bool(doc.get("stream", False))
    return req


# -- response documents -------------------------------------------------------
def result_to_dict(result: RunResult) -> Dict[str, Any]:
    """Scalar wire form of one result (exact floats, JSON round-trip)."""
    body: Dict[str, Any] = {
        "elapsed_s": result.elapsed_s,
        "phases": dict(result.phases),
        "comm_stats": dict(result.comm_stats),
    }
    if result.stats is not None:
        body["stats"] = dict(result.stats)
    return body


def error_body(kind: str, message: str) -> Dict[str, Any]:
    """The structured error object carried by a failed response."""
    return {"type": kind, "message": message}


def ok_response(req_id: Any, body: Dict[str, Any]) -> Dict[str, Any]:
    """A successful response envelope (``body`` keys merged in)."""
    doc = {"id": req_id, "ok": True}
    doc.update(body)
    return doc


def error_response(req_id: Any, kind: str, message: str) -> Dict[str, Any]:
    """A failed response envelope with a structured error object."""
    return {"id": req_id, "ok": False, "error": error_body(kind, message)}


def progress_event(
    req_id: Any, done: int, total: int, key: str, state: str
) -> Dict[str, Any]:
    """One per-task progress line of a streamed sweep/replica job."""
    return {
        "id": req_id,
        "event": "progress",
        "done": done,
        "total": total,
        "key": key[:12],
        "state": state,
    }
