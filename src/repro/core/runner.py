"""Execute one :class:`~repro.core.config.RunConfig` on the simulator.

The runner builds the DES environment, the decomposition, the network
backend (full or mirror), optional GPUs, and one rank process per task
(one representative process in mirror mode). The measurement follows the
paper's protocol: GPU sync and an MPI barrier immediately before reading
the start and end times; setup (initial H2D, pipeline priming) and drain
(final D2H for verification) are outside the measured window.

Every run executes on the flat event core's float64 time base
(docs/MODEL.md §12). The engine also offers an integer tick clock
(``Environment(quantum=...)``), but the machine models charge delays that
are arbitrary float quotients, so the runner pins float64 — the base every
recorded experiment value was produced on — and bit-identity across
engine refactors is enforced against the committed dump oracle
(``tests/experiments/golden_dump_fast.json``).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from repro.core.base import Implementation
from repro.core.config import RunConfig, RunResult
from repro.core.context import RankContext
from repro.des import Environment, SharedBandwidth
from repro.obs.tracer import GPU_GROUP_BASE, LINK_GROUP_BASE, Tracer
from repro.perturb.model import Perturbation, build_perturbation
from repro.simgpu.device import Gpu
from repro.simmpi.mirror import MirrorComm
from repro.simmpi.world import World
from repro.workloads import DEFAULT_WORKLOAD, Workload, get_workload

__all__ = ["run", "run_replicated"]


def _rank_main(impl: Implementation, ctx: RankContext, record: Dict[str, float]):
    yield from impl.setup(ctx)
    if ctx.gpu is not None:
        yield ctx.gpu.synchronize()
    if ctx.comm is not None:
        yield from ctx.comm.barrier()
    record["t0"] = ctx.env.now
    for i in range(ctx.cfg.steps):
        yield from impl.step(ctx, i)
    yield from impl.finish_timed(ctx)
    if ctx.comm is not None:
        yield from ctx.comm.barrier()
    record["t1"] = ctx.env.now
    yield from impl.drain(ctx)


def _build_full(env: Environment, cfg: RunConfig, impl: Implementation,
                workload: Workload, decomp) -> List[RankContext]:
    machine = cfg.machine
    world: Optional[World] = None
    if impl.uses_mpi:
        world = World(
            env, cfg.ntasks, machine.interconnect, machine.node, cfg.tasks_per_node
        )
    gpus: Dict[int, Gpu] = {}
    contexts = []
    tasks_per_gpu = _tasks_per_gpu(cfg)
    for rank in range(cfg.ntasks):
        sub = decomp.subdomain(rank)
        comm = world.comm(rank) if world is not None else None
        gpu = None
        if impl.uses_gpu:
            gpu_id = rank // tasks_per_gpu
            if gpu_id not in gpus:
                gpus[gpu_id] = Gpu(env, machine.gpu, name=f"gpu{gpu_id}")
            gpu = gpus[gpu_id]
        contexts.append(
            RankContext(
                env, cfg, sub, decomp, comm, workload.make_data(cfg, sub), gpu, 1
            )
        )
    if gpus and machine.gpu is not None and machine.gpu.has_nvlink:
        # One NVLink fabric per node, shared by the node's resident
        # devices: peer copies between them DMA over it instead of
        # staging through the host (see Gpu.peer_copy).
        gpus_per_node = max(1, machine.gpus_per_node)
        fabrics: Dict[int, SharedBandwidth] = {}
        for gpu_id, gpu in gpus.items():
            node = gpu_id // gpus_per_node
            if node not in fabrics:
                fabrics[node] = SharedBandwidth(
                    env, machine.gpu.nvlink_bandwidth_bps, name=f"nvlink{node}"
                )
            gpu.nvlink = fabrics[node]
    return contexts


def _tasks_per_gpu(cfg: RunConfig) -> int:
    """Tasks sharing one GPU (the machine may host several per node)."""
    gpus_per_node = max(1, cfg.machine.gpus_per_node)
    return max(1, math.ceil(cfg.tasks_per_node / gpus_per_node))


def _build_mirror(env: Environment, cfg: RunConfig, impl: Implementation,
                  workload: Workload, decomp) -> List[RankContext]:
    machine = cfg.machine
    comm = None
    rep_rank = 0
    if impl.uses_mpi:
        profile = workload.mirror_profile(cfg, decomp)
        comm = MirrorComm(env, profile)
        rep_rank = profile.representative_rank
    sub = decomp.subdomain(rep_rank)
    gpu = None
    gpu_share = 1
    if impl.uses_gpu:
        gpu = Gpu(env, machine.gpu, name="gpu")
        # Tasks sharing a GPU serialize on it; the representative's kernels
        # and transfers are stretched by that contention.
        gpu_share = _tasks_per_gpu(cfg)
    return [
        RankContext(
            env, cfg, sub, decomp, comm, workload.make_data(cfg, sub), gpu, gpu_share
        )
    ]


def _attach_tracer(
    tracer: Tracer, cfg: RunConfig, workload: Workload,
    contexts: List[RankContext],
) -> None:
    """Wire one tracer into every simulated component of this run.

    Group ids follow the :mod:`repro.obs.tracer` conventions: MPI ranks
    keep their rank number, GPU devices get ``GPU_GROUP_BASE + i``, and
    shared links (NICs, PCIe wires) get ids from ``LINK_GROUP_BASE`` up.
    Device capacities land in ``tracer.meta["gpus"]`` for the invariant
    checker.
    """
    tracer.meta.update(
        {
            "implementation": cfg.implementation,
            "machine": cfg.machine.name,
            "network": cfg.network,
            "ntasks": cfg.ntasks,
            "threads_per_task": cfg.threads_per_task,
            "domain": list(cfg.domain),
            "steps": cfg.steps,
            "progress": cfg.machine.interconnect.progress.value,
        }
    )
    if cfg.workload != DEFAULT_WORKLOAD:
        # Only stamped when non-default, so default-workload traces stay
        # byte-identical to the pre-workload golden traces.
        tracer.meta["workload"] = cfg.workload
        if cfg.workload_params:
            tracer.meta["workload_params"] = dict(cfg.workload_params)
    for ctx in contexts:
        ctx.tracer = tracer
        tracer.set_group_name(ctx.sub.rank, workload.rank_group_name(ctx.sub))

    next_link = LINK_GROUP_BASE
    comm0 = contexts[0].comm
    world = getattr(comm0, "world", None)
    if world is not None:  # full backend: one World shared by all ranks
        world.tracer = tracer
        for nic in world._nics:
            nic.tracer = tracer
            nic.trace_group = next_link
            tracer.set_group_name(next_link, nic.name)
            next_link += 1
    elif comm0 is not None:  # mirror backend
        comm0.tracer = tracer

    gpus: List[Gpu] = []
    for ctx in contexts:
        if ctx.gpu is not None and not any(ctx.gpu is g for g in gpus):
            gpus.append(ctx.gpu)
    gpus_meta: Dict[int, Dict[str, int]] = {}
    for idx, gpu in enumerate(gpus):
        group = GPU_GROUP_BASE + idx
        gpu.tracer = tracer
        gpu.trace_group = group
        tracer.set_group_name(group, gpu.name)
        gpus_meta[group] = {
            "kernel_slots": 16 if gpu.spec.concurrent_kernels else 1,
            "copy_engines": gpu.spec.copy_engines,
            "nvlink": int(gpu.nvlink is not None),
        }
        gpu.pcie.tracer = tracer
        gpu.pcie.trace_group = next_link
        tracer.set_group_name(next_link, gpu.pcie.name)
        next_link += 1
    nvlinks: List[SharedBandwidth] = []
    for gpu in gpus:
        if gpu.nvlink is not None and not any(gpu.nvlink is l for l in nvlinks):
            nvlinks.append(gpu.nvlink)
    for link in nvlinks:
        link.tracer = tracer
        link.trace_group = next_link
        tracer.set_group_name(next_link, link.name)
        next_link += 1
    if gpus_meta:
        tracer.meta["gpus"] = gpus_meta


def _attach_perturb(perturb: Perturbation, contexts: List[RankContext]) -> None:
    """Wire one perturbation injector into every simulated component.

    Mirrors :func:`_attach_tracer`: rank contexts draw from their rank's
    streams, the network backend from the sender rank's streams, and each
    GPU from its own ``GPU_GROUP_BASE + i`` group — assigned here even
    when no tracer is attached, so a device's noise sequence does not
    depend on whether the run is traced.
    """
    for ctx in contexts:
        ctx.perturb = perturb
    comm0 = contexts[0].comm
    world = getattr(comm0, "world", None)
    if world is not None:  # full backend: one World shared by all ranks
        world.perturb = perturb
    elif comm0 is not None:  # mirror backend
        comm0.perturb = perturb
    gpus: List[Gpu] = []
    for ctx in contexts:
        if ctx.gpu is not None and not any(ctx.gpu is g for g in gpus):
            gpus.append(ctx.gpu)
    for idx, gpu in enumerate(gpus):
        gpu.perturb = perturb
        gpu.trace_group = GPU_GROUP_BASE + idx


def run(cfg: RunConfig) -> RunResult:
    """Run one configuration; returns timing (and fields when functional).

    When a run cache is installed (:func:`repro.cache.configure`), cacheable
    configs — no functional fields, no tracer — are looked up by content
    hash first and stored after simulating; the replayed result is
    bit-identical to the simulated one (the simulator is deterministic and
    the cache stores exact floats).
    """
    from repro.cache import active_cache
    from repro.obs.capture import active_capture
    from repro.perturb import forced_override

    forced = forced_override()
    if forced is not None and cfg.seed is None and cfg.noise is None:
        # Process-global perturbation sweep (repro.perturb.forced_noise):
        # applied before the cache lookup so perturbed runs never collide
        # with noiseless cache entries. Configs carrying their own seed or
        # noise keep them.
        cfg = cfg.with_(seed=forced[0], noise=forced[1])

    capture = active_capture()
    if capture is not None:
        # Trace capture observes every run: force tracing (bypassing the
        # cache, which never stores traced runs) and feed the callback.
        result = _run_uncached(cfg if cfg.trace else cfg.with_(trace=True))
        capture(result)
        return result

    cache = active_cache()
    if cache is not None:
        cached = cache.get(cfg)
        if cached is not None:
            return cached
    result = _run_uncached(cfg)
    if cache is not None:
        cache.put(cfg, result)
    return result


def _run_uncached(cfg: RunConfig) -> RunResult:
    """Simulate one configuration (no cache consultation)."""
    workload = get_workload(cfg.workload)
    impl = workload.implementation(cfg.implementation)
    workload.validate(cfg)
    impl.validate(cfg)
    env = Environment()
    decomp = workload.decompose(cfg)

    if cfg.network == "full":
        contexts = _build_full(env, cfg, impl, workload, decomp)
    else:
        contexts = _build_mirror(env, cfg, impl, workload, decomp)

    tracer = None
    if cfg.trace:
        tracer = Tracer()
        _attach_tracer(tracer, cfg, workload, contexts)

    perturb = build_perturbation(cfg.seed, cfg.noise)
    if perturb is not None:
        _attach_perturb(perturb, contexts)
        # Fault events (stalls, retransmits, stragglers) land on the
        # dedicated "noise" trace lane when the run is traced.
        perturb.tracer = tracer

    records: List[Dict[str, float]] = [dict() for _ in contexts]
    for ctx, rec in zip(contexts, records):
        env.process(_rank_main(impl, ctx, rec), name=f"rank{ctx.sub.rank}")
    env.run()

    for rec in records:
        if "t1" not in rec:
            raise RuntimeError(
                f"{cfg.implementation}: a rank never finished (deadlock in the program)"
            )
    t0 = min(r["t0"] for r in records)
    t1 = max(r["t1"] for r in records)
    elapsed = t1 - t0
    if elapsed <= 0:
        raise RuntimeError(f"{cfg.implementation}: non-positive elapsed time")

    # Aggregate MPI counters over every simulated rank. In mirror mode there
    # is one representative context, so this reduces to the representative's
    # counters; in full-network mode it is the global traffic, for which
    # sent == received holds by construction (every isend pairs an irecv).
    comm_stats: Dict[str, int] = {}
    comms = [ctx.comm for ctx in contexts if ctx.comm is not None]
    if comms:
        comm_stats = {
            "messages_sent": sum(c.messages_sent for c in comms),
            "bytes_sent": sum(c.bytes_sent for c in comms),
            "messages_received": sum(c.messages_received for c in comms),
            "bytes_received": sum(c.bytes_received for c in comms),
        }
    overlap = None
    if tracer is not None:
        from repro.obs.metrics import compute_metrics

        tracer.meta["t0"] = t0
        tracer.meta["t1"] = t1
        tracer.meta["elapsed_s"] = elapsed
        overlap = compute_metrics(tracer)
    result = RunResult(
        config=cfg, elapsed_s=elapsed, phases=dict(contexts[0].phases),
        tracer=tracer, overlap=overlap, comm_stats=comm_stats,
    )
    if cfg.functional:
        workload.finalize_functional(cfg, contexts, result)
    return result


def run_replicated(cfg: RunConfig, replicas: int) -> RunResult:
    """Monte-Carlo replication: ``replicas`` seeded runs of one config.

    Each replica runs under an independent seed derived from
    ``cfg.seed`` (:func:`repro.perturb.rng.derive_seed`; replica 0 keeps
    the root seed, so a single-replica call is exactly ``run(cfg)``).
    Returns replica 0's result with :attr:`RunResult.stats` set to the
    ensemble summary (:func:`repro.perturb.stats.replication_stats`).
    Replicas are individually cacheable, so repeating a study is cheap.

    When a process-wide scheduler is installed (:mod:`repro.sched`), the
    whole ensemble goes through it as one batch — deduplicated against
    other work in the session and parallel with ``jobs > 1`` — with each
    replica's result bit-identical to a direct ``run`` of its seed.
    """
    from dataclasses import replace as _replace

    from repro.perturb.rng import derive_seed
    from repro.perturb.stats import replication_stats
    from repro.sched import active_scheduler

    if replicas < 1:
        raise ValueError(f"replicas must be >= 1, got {replicas!r}")
    if cfg.seed is None:
        raise ValueError("run_replicated requires a seeded config (RunConfig.seed)")
    seeded = [cfg.with_(seed=derive_seed(cfg.seed, i)) for i in range(replicas)]
    sched = active_scheduler()
    if sched is not None:
        results = sched.map(seeded)
    else:
        results = [run(c) for c in seeded]
    stats = replication_stats([r.elapsed_s for r in results])
    # A fresh record (never mutate a possibly cached result object).
    return _replace(results[0], config=cfg, stats=stats)
