"""§IV-G: GPU with MPI overlap using CUDA streams."""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.core.base import Implementation
from repro.core.context import RankContext
from repro.core.gpu_common import box_points
from repro.decomp.halo import pack_face, unpack_face
from repro.simmpi.api import halo_tag
from repro.stencil.arena import ScratchArena
from repro.stencil.kernels import apply_stencil_block, interior

__all__ = ["GpuStreamsMPI"]


def _forward_rims(
    shape: Tuple[int, int, int],
    host_recv: Dict[Tuple[int, int], np.ndarray],
    d: int,
    host_send: Dict[Tuple[int, int], np.ndarray],
) -> None:
    """Copy freshly received dim-``d`` halo rims into later dims' send buffers.

    The face buffers D2H'd from the device carry stale rim entries (halo
    positions of the other dimensions). The serialized exchange needs the
    dim-``d`` corner data inside the dim-``e > d`` sends, so after the
    dim-``d`` receives land, their boundary lines are copied into the rim
    rows of the pending send planes — the host-side equivalent of §IV-B's
    "x corners sent to y neighbors, and x and y to z".
    """
    for e in range(d + 1, 3):
        axes_e = [a for a in range(3) if a != e]
        d_pos = axes_e.index(d)
        axes_d = [a for a in range(3) if a != d]
        e_pos = axes_d.index(e)
        for side_e in (-1, 1):
            plane_e = host_send.get((e, side_e))
            if plane_e is None:
                continue
            eb = 1 if side_e == -1 else shape[e]  # boundary index in halo coords
            for side_d in (-1, 1):
                recv_plane = host_recv.get((d, side_d))
                if recv_plane is None:
                    continue
                line = np.take(recv_plane, eb, axis=e_pos)
                d_idx = 0 if side_d == -1 else shape[d] + 1
                if d_pos == 0:
                    plane_e[d_idx, :] = line
                else:
                    plane_e[:, d_idx] = line


class GpuStreamsMPI(Implementation):
    """Interior kernel on one stream; halos, faces and copies on another.

    Per step (paper §IV-G): the CPU launches the interior kernel to stream
    1, performs the MPI communication using the boundary buffers copied back
    at the end of the *previous* step, then issues to stream 2: H2D halo
    copies, halo-unpack kernels, the boundary-face kernels (which also fill
    the outgoing buffers), and D2H copies of the new boundary buffers. The
    streams are synchronized at the end of the step.

    The interior kernel thus overlaps MPI communication and PCIe copies —
    but not the boundary-face kernels, because a full-occupancy kernel owns
    every SM (see :class:`repro.machines.spec.GpuSpec.concurrent_kernels`).
    """

    key = "gpu_streams"
    title = "GPU + MPI overlap via streams"
    section = "IV-G"
    fortran_loc = 645  # "almost triples", upper end (more code than IV-F)
    uses_mpi = True
    uses_gpu = True

    def setup(self, ctx: RankContext):
        gpu = ctx.gpu
        st = ctx.state
        st["s1"] = gpu.stream("interior")
        st["s2"] = gpu.stream("boundary")
        st["arena"] = ScratchArena()  # device-side separable-sweep scratch
        shape = [s + 2 for s in ctx.sub.shape]
        # NIC-registered under GPUDirect: halo traffic DMAs device memory
        # directly and the stream-2 staging copies below are skipped.
        st["u"] = gpu.memory.allocate(
            f"u{ctx.sub.rank}", shape, ctx.cfg.functional,
            registered=ctx.gpudirect,
        )
        st["unew"] = gpu.memory.allocate(
            f"unew{ctx.sub.rank}", shape, ctx.cfg.functional,
            registered=ctx.gpudirect,
        )
        st["host_send"] = {}
        st["host_recv"] = {}
        if ctx.cfg.functional:
            interior(st["u"].data)[...] = interior(ctx.data.u)
            yield ctx.h2d(st["s1"], st["u"].nbytes)
            # Prime the pipeline: the first step's MPI needs boundary buffers.
            for dim in range(3):
                for side in (-1, 1):
                    st["host_send"][(dim, side)] = pack_face(st["u"].data, dim, side)
        yield ctx.gpu.synchronize()

    def step(self, ctx: RankContext, index: int):
        st = ctx.state
        s1, s2 = st["s1"], st["s2"]
        comm = ctx.comm
        data = ctx.data
        coeffs = data.coeffs
        u_dev, unew_dev = st["u"], st["unew"]
        host_send, host_recv = st["host_send"], st["host_recv"]

        # Interior kernel to stream 1.
        core_lo, core_hi = data.core_box()
        arena = st["arena"]

        def interior_action():
            if u_dev.functional:
                apply_stencil_block(u_dev.data, coeffs, unew_dev.data,
                                    core_lo, core_hi, arena=arena)

        yield ctx.launch_cost(1)
        ctx.stencil_kernel(s1, data.core_points(), shape=ctx.sub.shape,
                           action=interior_action)

        # MPI communication (serialized dims, buffers from the previous step).
        for dim in range(3):
            nbytes = ctx.face_bytes(dim)
            recvs = {}
            for side in (-1, 1):
                recvs[side] = yield from comm.irecv(
                    ctx.neighbor(dim, side), halo_tag(dim, -side), nbytes
                )
            sends = []
            for side in (-1, 1):
                sends.append(
                    (
                        yield from comm.isend(
                            ctx.neighbor(dim, side),
                            halo_tag(dim, side),
                            nbytes,
                            host_send.get((dim, side)),
                        )
                    )
                )
            for side in (-1, 1):
                host_recv[(dim, side)] = yield from comm.wait(recvs[side])
            for req in sends:
                yield from comm.wait(req)
            if data.functional:
                _forward_rims(ctx.sub.shape, host_recv, dim, host_send)

        # Stream 2: H2D halos, unpack, face kernels, pack, D2H.
        yield ctx.launch_cost(6)
        for dim in range(3):
            nbytes = ctx.face_bytes(dim)
            if not ctx.gpudirect:
                # Halo staging H2D; under GPUDirect the receives already
                # landed in device memory.
                ctx.h2d(s2, 2 * nbytes)

            def unpack_action(dim=dim):
                if u_dev.functional:
                    for side in (-1, 1):
                        unpack_face(u_dev.data, dim, side, host_recv[(dim, side)])

            ctx.device_copy_kernel(s2, 2 * nbytes, dim, unpack_action)

        slabs = data.boundary_slabs()
        yield ctx.launch_cost(6)
        for dim in range(3):
            nbytes = ctx.face_bytes(dim)
            pair = slabs[2 * dim : 2 * dim + 2]
            pts = sum(box_points(b) for b in pair)

            def face_action(pair=pair):
                if u_dev.functional:
                    for lo, hi in pair:
                        apply_stencil_block(u_dev.data, coeffs, unew_dev.data,
                                            lo, hi, arena=arena)

            ctx.face_kernel(s2, pts, dim, face_action)

            def pack_action(dim=dim):
                if u_dev.functional:
                    for side in (-1, 1):
                        host_send[(dim, side)] = pack_face(unew_dev.data, dim, side)

            ctx.device_copy_kernel(s2, 2 * nbytes, dim, pack_action)
            if not ctx.gpudirect:
                # Outgoing-buffer staging D2H; under GPUDirect the next
                # step's sends read the packed device buffers in place.
                ctx.d2h(s2, 2 * nbytes)

        # End of step: synchronize the two streams; flip the state arrays.
        yield ctx.gpu.synchronize([s1, s2])
        st["u"], st["unew"] = st["unew"], st["u"]

    def drain(self, ctx: RankContext):
        if ctx.cfg.functional:
            st = ctx.state
            yield ctx.gpu.synchronize()
            yield ctx.d2h(st["s1"], st["u"].nbytes)
            interior(ctx.data.u)[...] = interior(st["u"].data)
