"""§IV-E: GPU resident — the whole problem lives in GPU global memory."""

from __future__ import annotations

import numpy as np

from repro.core.base import Implementation
from repro.core.context import RankContext
from repro.stencil.arena import ScratchArena
from repro.stencil.kernels import apply_stencil, fill_periodic_halo, interior

__all__ = ["GpuResident"]


class GpuResident(Implementation):
    """Best-case GPU scenario: no CPU-GPU traffic during the run.

    One CUDA kernel per time step over the whole (haloed) domain; halo
    threads implement periodicity by copying the opposite boundary; the two
    state arrays are flipped between kernel arguments so no copy step is
    needed (paper §IV-E, after [6]). The CPU and GPU synchronize immediately
    before the timer calls, and the initial/final transfers are excluded
    from the measurement — both properties the runner honors.
    """

    key = "gpu_resident"
    title = "GPU resident"
    section = "IV-E"
    fortran_loc = 228  # 215 + 6% (paper: "just 6% more lines")
    uses_mpi = False
    uses_gpu = True

    def setup(self, ctx: RankContext):
        gpu = ctx.gpu
        st = ctx.state
        st["stream"] = gpu.stream("compute")
        # Device-side scratch arena for the separable sweeps (reused every
        # step; the functional kernel is allocation-free in steady state).
        st["arena"] = ScratchArena()
        st["u"] = gpu.memory.allocate("u", [s + 2 for s in ctx.sub.shape], ctx.cfg.functional)
        st["unew"] = gpu.memory.allocate(
            "unew", [s + 2 for s in ctx.sub.shape], ctx.cfg.functional
        )
        if ctx.cfg.functional:
            # Initial H2D copy — outside the measurement, per the paper.
            interior(st["u"].data)[...] = interior(ctx.data.u)
            yield ctx.h2d(st["stream"], st["u"].nbytes)

    def step(self, ctx: RankContext, index: int):
        st = ctx.state
        coeffs = ctx.data.coeffs
        u_dev, unew_dev = st["u"], st["unew"]

        arena = st["arena"]

        def kernel_body():
            if u_dev.functional:
                fill_periodic_halo(u_dev.data)
                apply_stencil(u_dev.data, coeffs, out=unew_dev.data, arena=arena)

        yield ctx.launch_cost(1)
        ctx.stencil_kernel(
            st["stream"], ctx.sub.points, shape=ctx.sub.shape, action=kernel_body
        )
        # Flip the kernel arguments for the next step (host-side bookkeeping;
        # the actions above close over the arrays flipped *now*, preserving
        # issue order exactly like flipped CUDA kernel arguments do).
        st["u"], st["unew"] = st["unew"], st["u"]

    def drain(self, ctx: RankContext):
        if ctx.cfg.functional:
            st = ctx.state
            yield ctx.gpu.synchronize()
            # Final D2H — outside the measurement, per the paper.
            yield ctx.d2h(st["stream"], st["u"].nbytes)
            interior(ctx.data.u)[...] = interior(st["u"].data)
