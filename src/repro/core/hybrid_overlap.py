"""§IV-I: CPU+GPU partitioned for overlap with nonblocking MPI and
asynchronous CPU-GPU communication — the paper's best implementation."""

from __future__ import annotations

from typing import List

import numpy as np

from repro.core.base import Implementation
from repro.core.context import RankContext
from repro.core.exchange import complete_dim, post_dim
from repro.core.gpu_common import (
    box_points,
    copy_box_host_to_dev,
    host_to_dev,
    inner_boundary_slabs,
    inner_halo_slabs,
    slab_normal_split,
)
from repro.core.hybrid_common import hybrid_drain, hybrid_setup, hybrid_validate
from repro.decomp.boxdecomp import BoxDecomposition
from repro.machines.calibration import WALL_COMPUTE_EFFICIENCY
from repro.stencil.kernels import apply_stencil_block

__all__ = ["HybridOverlapMPI"]


class HybridOverlapMPI(Implementation):
    """Everything overlaps: CPU compute, GPU compute, MPI, and PCIe.

    Per step (paper §IV-I):

    1. issue the kernel for the GPU *block interior* to stream 1 — it needs
       no halo, so it starts immediately and runs under everything else;
    2. issue to stream 2: async H2D of the inner-halo layer, the block
       *boundary* kernels, and async D2H of the new inner-boundary layer
       (double-buffered on the host, applied at the end of the step);
    3. per dimension, overlap the MPI exchange with the CPU wall-interior
       points of that same dimension;
    4. compute the outer boundary points after all communication;
    5. synchronize the streams, flip the device arrays, copy the wall state.

    The CPU veneer (often thickness 1, Figs. 11/12) decouples the MPI
    communication from the CPU-GPU communication: the GPU runs one large
    uniform kernel per step with no face kernels and no exposed PCIe, which
    is why this implementation nearly matches the GPU-resident rate (82 vs
    86 GF on one Yona node, §V-E).
    """

    key = "hybrid_overlap"
    title = "CPU+GPU full overlap"
    section = "IV-I"
    fortran_loc = 860  # stated exactly: 4x the 215-line single-task code
    uses_mpi = True
    uses_gpu = True

    def validate(self, cfg):
        hybrid_validate(self, cfg)

    def setup(self, ctx: RankContext):
        yield from hybrid_setup(self, ctx)
        ctx.state["d2h_staging"] = []  # (slab, array) pairs, applied at step end

    def step(self, ctx: RankContext, index: int):
        st = ctx.state
        box: BoxDecomposition = st["box"]
        data = ctx.data
        s1, s2 = st["s1"], st["s2"]
        u_dev, unew_dev = st["u"], st["unew"]
        coeffs = data.coeffs
        h2d_bytes, d2h_bytes = box.inner_exchange_bytes()
        off = host_to_dev(box)

        # 1) Block-interior kernel to stream 1 (no halo dependency).
        bx, by, bz = box.block_shape
        interior_pts = max(0, bx - 2) * max(0, by - 2) * max(0, bz - 2)
        arena = st["arena"]

        def block_interior_action():
            if u_dev.functional:
                apply_stencil_block(
                    u_dev.data, coeffs, unew_dev.data, (1, 1, 1),
                    (bx - 1, by - 1, bz - 1), arena=arena
                )

        yield ctx.launch_cost(1)
        interior_ev = ctx.stencil_kernel(s1, interior_pts, shape=box.block_shape,
                                         action=block_interior_action)
        if ctx.cfg.disable_stream_overlap and not interior_ev.processed:
            yield interior_ev  # ablation: host blocks on every device phase

        # 2) Stream 2: async inner exchange around the block-boundary kernel.
        in_slabs = inner_halo_slabs(box)
        out_slabs = inner_boundary_slabs(box)
        yield ctx.memcpy(h2d_bytes, 0.7, phase="stage")  # pack pinned buffer
        yield ctx.launch_cost(3)

        def h2d_action():
            if u_dev.functional:
                for _, slab in in_slabs:
                    copy_box_host_to_dev(data.u, u_dev.data, box, slab)

        ctx.h2d(s2, h2d_bytes, action=h2d_action)

        shell_pts = sum(box_points(b) for _, b in out_slabs)

        def boundary_action():
            if u_dev.functional:
                for _, (lo, hi) in out_slabs:
                    # apply_stencil_block wants block-interior coordinates.
                    dlo = tuple(l - b for l, b in zip(lo, box.block_lo))
                    dhi = tuple(h - b for h, b in zip(hi, box.block_lo))
                    apply_stencil_block(u_dev.data, coeffs, unew_dev.data,
                                        dlo, dhi, arena=arena)

        ctx.thin_kernel(s2, shell_pts, action=boundary_action)

        staging: List = st["d2h_staging"]

        def d2h_action():
            if unew_dev.functional:
                staging.clear()
                for _, (lo, hi) in out_slabs:
                    dsl = tuple(
                        slice(l - o, h - o) for l, h, o in zip(lo, hi, off)
                    )
                    staging.append(((lo, hi), unew_dev.data[dsl].copy()))

        d2h_ev = ctx.d2h(s2, d2h_bytes, action=d2h_action)
        if ctx.cfg.disable_stream_overlap and not d2h_ev.processed:
            yield d2h_ev  # ablation: wait out the whole inner exchange

        # 3) MPI per dimension, overlapped with that dimension's wall
        #    interiors (they read no outer halo).
        for dim in range(3):
            recvs, sends = yield from post_dim(ctx, dim)
            pts = sum(
                box.wall_interior_points_for(w) for w in box.walls_for_dim(dim)
            )
            if ctx.cfg.disable_mpi_overlap:
                # Ablation: finish the exchange first, compute after it.
                yield from complete_dim(ctx, dim, recvs, sends)
            yield ctx.compute(pts, efficiency=WALL_COMPUTE_EFFICIENCY)
            if data.functional:
                for w in box.walls_for_dim(dim):
                    data.apply_block(*box.wall_interior_box(w))
            if not ctx.cfg.disable_mpi_overlap:
                yield from complete_dim(ctx, dim, recvs, sends)

        # 4) Outer boundary points (the task-surface shell; all CPU).
        outer_pts = box.wall_outer_boundary_points()
        yield ctx.compute(outer_pts, boundary=True, pieces=6)
        if data.functional:
            for lo, hi in data.boundary_slabs():
                data.apply_block(lo, hi)

        # 5) Synchronize; apply the double-buffered inner boundary; flip;
        #    copy the wall state.
        yield ctx.gpu.synchronize([s1, s2])
        yield ctx.memcpy(d2h_bytes, 0.7, phase="stage")
        if data.functional:
            for (lo, hi), arr in staging:
                hsl = tuple(slice(1 + l, 1 + h) for l, h in zip(lo, hi))
                data.u[hsl] = arr
        st["u"], st["unew"] = st["unew"], st["u"]
        yield ctx.copy_state_cost(box.cpu_points)
        if data.functional:
            for wall in box.walls():
                data.copy_region(wall.lo, wall.hi)

    def drain(self, ctx: RankContext):
        yield from hybrid_drain(self, ctx)
