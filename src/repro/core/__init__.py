"""The paper's contribution: nine advection implementations (§IV-A..I).

Each implementation is written once as a per-rank *program* — a DES
coroutine that issues timed operations (compute sweeps, MPI calls, GPU
kernels, PCIe copies) against the simulated machine, and, in functional
mode, the matching NumPy operations. The same program therefore yields
both a performance measurement (simulated seconds per step → GF via the
paper's 53 flop/point metric) and a verifiable field.

========================  ====================================  ==========
key                       paper section                         hardware
========================  ====================================  ==========
``single``                IV-A  single task + OpenMP            CPU
``bulk``                  IV-B  bulk-synchronous MPI            CPU
``nonblocking``           IV-C  nonblocking-overlap MPI         CPU
``thread_overlap``        IV-D  OpenMP comm thread overlap      CPU
``gpu_resident``          IV-E  GPU resident                    GPU
``gpu_bulk``              IV-F  GPU + bulk-synchronous MPI      GPU
``gpu_streams``           IV-G  GPU + MPI overlap via streams   GPU
``hybrid_bulk``           IV-H  CPU+GPU, bulk-synchronous MPI   CPU+GPU
``hybrid_overlap``        IV-I  CPU+GPU full overlap            CPU+GPU
========================  ====================================  ==========

Use :func:`~repro.core.runner.run` with a
:class:`~repro.core.config.RunConfig` to execute one configuration, or the
sweep helpers in :mod:`repro.perf` for whole experiments.
"""

from repro.core.config import RunConfig, RunResult
from repro.core.registry import IMPLEMENTATIONS, get_implementation
from repro.core.runner import run

__all__ = [
    "IMPLEMENTATIONS",
    "RunConfig",
    "RunResult",
    "get_implementation",
    "run",
]
