"""Base class for the nine implementations."""

from __future__ import annotations

import abc
from typing import Iterator

from repro.core.config import RunConfig
from repro.core.context import RankContext

__all__ = ["Implementation", "freeze_implementations"]


def _empty():
    """An empty generator (default hook body)."""
    return
    yield  # pragma: no cover


class Implementation(abc.ABC):
    """One of the paper's §IV implementations, as a per-rank program.

    Subclasses provide the hooks below; every hook is a generator run inside
    the rank's DES process:

    * :meth:`setup` — untimed preparation before the timing barrier
      (allocate device memory, initial H2D, prime pipeline buffers);
    * :meth:`step` — one time step (the measured unit);
    * :meth:`finish_timed` — work that belongs inside the measurement
      (the paper synchronizes CPU and GPU immediately before timer calls);
    * :meth:`drain` — post-measurement retrieval of functional state.

    Registry instances are shared singletons reused by every run in the
    process — including interleaved runs in the scheduler pool and the
    serve daemon — so they must stay stateless: per-run state belongs in
    ``ctx.state`` (or on the data object), never on ``self``. The
    registries enforce this by freezing their instances
    (:func:`freeze_implementations`); an assignment to a frozen instance
    raises instead of silently bleeding state into the next run.
    """

    #: registry key, e.g. ``"bulk"``.
    key: str = ""
    #: human-readable title.
    title: str = ""
    #: paper section, e.g. ``"IV-B"``.
    section: str = ""
    #: Fortran lines of code reported/derived from the paper's Fig. 2.
    fortran_loc: int = 0
    uses_mpi: bool = False
    uses_gpu: bool = False

    def __setattr__(self, name: str, value) -> None:
        if getattr(self, "_frozen", False):
            raise AttributeError(
                f"{type(self).__name__} instances are shared singletons; "
                f"keep per-run state in ctx.state, not on the implementation "
                f"(tried to set {name!r})"
            )
        super().__setattr__(name, value)

    def freeze(self) -> "Implementation":
        """Make this instance immutable (registry singletons only)."""
        object.__setattr__(self, "_frozen", True)
        return self

    def validate(self, cfg: RunConfig) -> None:
        """Reject configurations this implementation cannot run."""
        if self.uses_gpu and cfg.machine.gpu is None:
            raise ValueError(f"{self.key} needs a GPU; {cfg.machine.name} has none")
        if not self.uses_mpi and cfg.ntasks != 1:
            raise ValueError(
                f"{self.key} is single-task; got {cfg.ntasks} tasks "
                f"({cfg.cores} cores / {cfg.threads_per_task} threads)"
            )

    def setup(self, ctx: RankContext) -> Iterator:
        """Untimed preparation (default: nothing)."""
        return _empty()

    @abc.abstractmethod
    def step(self, ctx: RankContext, index: int) -> Iterator:
        """One measured time step."""

    def finish_timed(self, ctx: RankContext) -> Iterator:
        """Default: synchronize the GPU if this rank drives one."""
        if ctx.gpu is not None:
            def sync():
                yield ctx.gpu.synchronize()

            return sync()
        return _empty()

    def drain(self, ctx: RankContext) -> Iterator:
        """Post-measurement functional-state retrieval (default: nothing)."""
        return _empty()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Implementation {self.key} ({self.section})>"


def freeze_implementations(*impls: Implementation) -> dict:
    """Build a ``key -> frozen singleton`` registry level from instances."""
    out = {}
    for impl in impls:
        if not impl.key:
            raise ValueError(f"{type(impl).__name__} has no registry key")
        if impl.key in out:
            raise ValueError(f"duplicate implementation key {impl.key!r}")
        out[impl.key] = impl.freeze()
    return out
