"""Per-rank functional state (fields, packing, local kernels).

A :class:`RankData` carries either real NumPy fields (functional mode) or
nothing (shadow mode) behind one API, so the implementations' programs call
the same methods either way. All methods are numerics-only — simulated time
is charged separately by the context's cost helpers.

Note on layout: the functional arrays are C-ordered ``[x, y, z]`` (z
contiguous), while the *cost* models reference the paper's Fortran layout
(x contiguous); the numbers produced are identical either way, and the
costs follow the paper's machine.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.config import RunConfig
from repro.decomp.partition import Subdomain
from repro.stencil.arena import ScratchArena
from repro.stencil.coefficients import StencilCoefficients, tensor_product_coefficients
from repro.stencil.grid import Grid3D, allocate_field
from repro.stencil.kernels import (
    apply_stencil_block,
    fill_periodic_halo,
    interior,
)
from repro.decomp.halo import pack_face, unpack_face

__all__ = ["RankData", "local_initial_condition"]


def local_initial_condition(cfg: RunConfig, sub: Subdomain) -> np.ndarray:
    """The Gaussian initial condition restricted to ``sub`` (no halo)."""
    grid = Grid3D(cfg.domain)
    L = grid.length
    center = (0.5 * L,) * 3
    coords = []
    for d in range(3):
        n_global = cfg.domain[d]
        idx = np.arange(sub.offset[d], sub.offset[d] + sub.shape[d])
        coords.append((idx + 0.5) * (L / n_global))
    x = coords[0][:, None, None]
    y = coords[1][None, :, None]
    z = coords[2][None, None, :]
    s2 = (cfg.sigma * L) ** 2

    def wrapped_sq(coord, c0):
        dd = np.abs(coord - c0)
        dd = np.minimum(dd, L - dd)
        return dd * dd

    r2 = wrapped_sq(x, center[0]) + wrapped_sq(y, center[1]) + wrapped_sq(z, center[2])
    return np.exp(-r2 / (2.0 * s2))


class RankData:
    """One rank's fields and local numerics (or shadow no-ops)."""

    def __init__(self, cfg: RunConfig, sub: Subdomain):
        self.cfg = cfg
        self.sub = sub
        self.coeffs: StencilCoefficients = tensor_product_coefficients(
            cfg.velocity, cfg.nu
        )
        self.functional = cfg.functional
        #: per-rank scratch arena: the separable sweeps lease their
        #: intermediate buffers here, so repeated steps allocate nothing.
        self.arena = ScratchArena()
        if self.functional:
            self.u: Optional[np.ndarray] = allocate_field(sub.shape)
            self.unew: Optional[np.ndarray] = allocate_field(sub.shape)
            interior(self.u)[...] = local_initial_condition(cfg, sub)
        else:
            self.u = None
            self.unew = None

    # -- halo / buffers -------------------------------------------------------
    def fill_halo_local(self, dims: Sequence[int] = (0, 1, 2)) -> None:
        """Periodic halo fill within this rank (single-task / GPU-resident)."""
        if self.u is not None:
            fill_periodic_halo(self.u, dims)

    def pack(self, dim: int, side: int) -> Optional[np.ndarray]:
        """Pack the outgoing boundary plane for the (dim, side) neighbor."""
        if self.u is None:
            return None
        return pack_face(self.u, dim, side)

    def unpack(self, dim: int, side: int, buf: Optional[np.ndarray]) -> None:
        """Store a received plane into the (dim, side) halo."""
        if self.u is None:
            return
        if buf is None:
            raise ValueError("functional rank received an empty payload")
        unpack_face(self.u, dim, side, buf)

    # -- compute ---------------------------------------------------------------
    def apply_block(self, lo: Tuple[int, int, int], hi: Tuple[int, int, int]) -> None:
        """Equation 2 on interior sub-box [lo, hi) into ``unew``.

        Runs the separable three-sweep engine (the coefficients are built
        via :func:`tensor_product_coefficients`, so factor triples are
        always available) with this rank's scratch arena.
        """
        if self.u is not None:
            apply_stencil_block(self.u, self.coeffs, self.unew, lo, hi,
                                arena=self.arena)

    def apply_all(self) -> None:
        """Equation 2 on the whole interior."""
        self.apply_block((0, 0, 0), self.sub.shape)

    def copy_state(self) -> None:
        """Step 3 of §IV-A: new state becomes current state (interior only)."""
        if self.u is not None:
            interior(self.u)[...] = interior(self.unew)

    def copy_region(self, lo: Tuple[int, int, int], hi: Tuple[int, int, int]) -> None:
        """Copy ``unew`` over ``u`` on the interior box [lo, hi) only."""
        if self.u is None:
            return
        sl = tuple(slice(1 + l, 1 + h) for l, h in zip(lo, hi))
        self.u[sl] = self.unew[sl]

    def interior_view(self) -> Optional[np.ndarray]:
        """Interior of the current state (for gathering/verification)."""
        if self.u is None:
            return None
        return interior(self.u)

    # -- geometry helpers used by overlap partitions ---------------------------
    def core_box(self) -> Tuple[Tuple[int, int, int], Tuple[int, int, int]]:
        """Interior-core box: all points not touching the halo."""
        nx, ny, nz = self.sub.shape
        return (1, 1, 1), (nx - 1, ny - 1, nz - 1)

    def core_points(self) -> int:
        """Point count of the interior core."""
        (x0, y0, z0), (x1, y1, z1) = self.core_box()
        return max(0, x1 - x0) * max(0, y1 - y0) * max(0, z1 - z0)

    def boundary_points(self) -> int:
        """Points touching the halo (computed after communication)."""
        return self.sub.points - self.core_points()

    def core_thirds(self):
        """The interior core split into thirds along z (paper §IV-C)."""
        (x0, y0, z0), (x1, y1, z1) = self.core_box()
        span = z1 - z0
        cuts = [z0, z0 + span // 3, z0 + (2 * span) // 3, z1]
        return [
            ((x0, y0, cuts[i]), (x1, y1, cuts[i + 1])) for i in range(3)
        ]

    def boundary_slabs(self):
        """The six boundary-shell slabs (non-overlapping, thickness 1)."""
        nx, ny, nz = self.sub.shape
        return [
            ((0, 0, 0), (1, ny, nz)),
            ((nx - 1, 0, 0), (nx, ny, nz)),
            ((1, 0, 0), (nx - 1, 1, nz)),
            ((1, ny - 1, 0), (nx - 1, ny, nz)),
            ((1, 1, 0), (nx - 1, ny - 1, 1)),
            ((1, 1, nz - 1), (nx - 1, ny - 1, nz)),
        ]
