"""The serialized halo-exchange protocol shared by the MPI implementations.

Implements §IV-B's sequence, per dimension: the master thread issues
nonblocking receives; all threads pack the two send buffers; the master
sends and completes the receives; all threads unpack into the halos.
Dimensions run strictly in x, y, z order so corner data propagates through
faces (x corners travel via y neighbors, x and y via z).

:func:`post_dim` / :func:`complete_dim` expose the two halves so the
nonblocking-overlap implementation (§IV-C) can compute between them;
:func:`bulk_exchange` runs them back-to-back (§IV-B, §IV-H).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.context import FACE_PACK_STRIDE_PENALTY, RankContext
from repro.simmpi.api import Request, halo_tag

__all__ = ["post_dim", "complete_dim", "bulk_exchange"]


def post_dim(ctx: RankContext, dim: int, pack_threads: int | None = None):
    """Generator: irecvs, pack, isends for one dimension.

    Returns ``(recvs, sends)`` where ``recvs`` maps halo side -> Request.
    ``pack_threads`` overrides the thread count doing the packing (the
    OpenMP-overlap implementation packs with the master thread only).
    """
    comm = ctx.comm
    nbytes = ctx.face_bytes(dim)
    # Master thread first issues nonblocking receive calls (§IV-B). My halo
    # on `side` is filled by the (dim, side) neighbor's send toward -side.
    recvs: Dict[int, Request] = {}
    for side in (-1, 1):
        recvs[side] = yield from comm.irecv(
            ctx.neighbor(dim, side), halo_tag(dim, -side), nbytes
        )
    # All threads copy into send buffers.
    yield ctx.memcpy(
        2 * nbytes, FACE_PACK_STRIDE_PENALTY[dim], phase="pack", threads=pack_threads
    )
    sends: List[Request] = []
    for side in (-1, 1):
        payload = ctx.data.pack(dim, side)
        sends.append(
            (yield from comm.isend(ctx.neighbor(dim, side), halo_tag(dim, side), nbytes, payload))
        )
    return recvs, sends


def complete_dim(
    ctx: RankContext,
    dim: int,
    recvs: Dict[int, Request],
    sends: List[Request],
    unpack_threads: int | None = None,
):
    """Generator: complete one dimension's receives and unpack the halos."""
    comm = ctx.comm
    nbytes = ctx.face_bytes(dim)
    payloads = {}
    for side in (-1, 1):
        payloads[side] = yield from comm.wait(recvs[side])
    yield ctx.memcpy(
        2 * nbytes, FACE_PACK_STRIDE_PENALTY[dim], phase="unpack", threads=unpack_threads
    )
    if ctx.data.functional:
        for side in (-1, 1):
            ctx.data.unpack(dim, side, payloads[side])
    for req in sends:
        yield from comm.wait(req)


def bulk_exchange(ctx: RankContext, threads: int | None = None):
    """Generator: the full bulk-synchronous serialized exchange (§IV-B)."""
    for dim in range(3):
        recvs, sends = yield from post_dim(ctx, dim, pack_threads=threads)
        yield from complete_dim(ctx, dim, recvs, sends, unpack_threads=threads)
