"""Per-rank execution context: timed cost helpers over the machine models.

The context is the single place where an implementation's program touches
simulated time. CPU work comes back as timeout events to ``yield``; GPU
work goes through the :class:`~repro.simgpu.device.Gpu` streams. In mirror
mode, ``gpu_share`` (> 1 when several MPI tasks drive one GPU) scales both
kernel durations and PCIe bytes, standing in for the contention that the
full backend produces naturally when ranks share a device.

Cost helpers charge time with bare callback slots (``env.schedule``) where
no caller ever yields on the occurrence — on the flat event core
(docs/MODEL.md §12) those are allocation-free bucket appends — and with
:class:`~repro.des.Timeout` events where an implementation's coroutine
waits on the result.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.core.config import RunConfig
from repro.core.data import RankData
from repro.decomp.partition import Decomposition, Subdomain
from repro.des import Environment, Event
from repro.machines.cpu_model import (
    memcpy_time,
    task_compute_time,
)
from repro.machines.calibration import BOUNDARY_LOOP_EFFICIENCY, COPY_BYTES_PER_POINT
from repro.simgpu.blockmodel import stencil_kernel_time
from repro.simgpu.device import Gpu, Stream
from repro.simmpi.api import RankComm
from repro.stencil.coefficients import FLOPS_PER_POINT

__all__ = ["RankContext", "FACE_PACK_STRIDE_PENALTY"]

#: Host-side pack/unpack stride penalty per face-normal dimension, for the
#: paper's Fortran layout (x contiguous): x faces gather fully strided
#: elements, y faces gather contiguous x runs, z faces are contiguous slabs.
FACE_PACK_STRIDE_PENALTY = {0: 0.5, 1: 0.8, 2: 1.0}

#: GPU boundary-face kernel rate multipliers per face-normal dimension for
#: the §IV-F/G kernels (which fuse halo unpack and outgoing-buffer writes
#: into the face computation, per the paper's own description): x faces are
#: fully non-coalesced (the calibrated ``face_kernel_gflops``), y faces
#: read contiguous x runs (4x better), z faces are coalesced planes but
#: still pay the fused copies and per-face launches (8x better). The clean
#: §IV-I block-boundary kernels instead run at the thin-slab rate.
FACE_KERNEL_MULTIPLIER = {0: 1.0, 1: 4.0, 2: 8.0}


class RankContext:
    """Everything one rank's program needs."""

    def __init__(
        self,
        env: Environment,
        cfg: RunConfig,
        sub: Subdomain,
        decomp: Decomposition,
        comm: Optional[RankComm],
        data: RankData,
        gpu: Optional[Gpu] = None,
        gpu_share: int = 1,
    ):
        self.env = env
        self.cfg = cfg
        self.sub = sub
        self.decomp = decomp
        self.comm = comm
        self.data = data
        self.gpu = gpu
        self.gpu_share = gpu_share
        self.node = cfg.machine.node
        self.threads = cfg.threads_per_task
        self.phases: Dict[str, float] = defaultdict(float)
        #: optional repro.obs tracer (RunConfig.trace); shared with the GPU,
        #: the communicator, and the shared links.
        self.tracer = None
        #: optional repro.perturb injector (RunConfig.seed + noise); None on
        #: the noiseless path, so each hook costs one pointer comparison.
        self.perturb = None
        #: free-form per-implementation state (device arrays, streams, ...)
        self.state: Dict[str, object] = {}
        #: host-compute slowdown charged for a software MPI progress thread
        #: (ProgressModel.PROGRESS_THREAD only; 0.0 — and therefore one
        #: falsy check per charge — under manual poll and hardware offload).
        #: Communication-free ranks (comm is None) run untaxed: nobody polls.
        self._progress_tax = (
            cfg.machine.interconnect.progress_tax if comm is not None else 0.0
        )

    # -- bookkeeping -----------------------------------------------------------
    def _charge(self, phase: str, seconds: float) -> Event:
        if self.perturb is not None and seconds > 0.0:
            # OS jitter + straggler slowdown on every host-side chunk.
            seconds *= self.perturb.compute_factor(self.sub.rank)
        if self._progress_tax and seconds > 0.0:
            # The progress thread steals cycles from every host-side chunk.
            seconds *= 1.0 + self._progress_tax
        self.phases[phase] += seconds
        if self.tracer is not None and seconds > 0:
            self.tracer.record(
                "host", phase, self.env.now, self.env.now + seconds,
                group=self.sub.rank, cat="host",
            )
        return self.env.timeout(seconds)

    # -- CPU costs ---------------------------------------------------------------
    def compute(
        self,
        points: int,
        *,
        boundary: bool = False,
        guided: bool = False,
        efficiency: Optional[float] = None,
        pieces: int = 1,
        phase: str = "compute",
    ) -> Event:
        """Timed stencil sweep of ``points`` on this task's threads.

        ``pieces`` > 1 charges the sweep as that many separate OpenMP
        parallel regions (e.g. the six boundary-shell slab loops of the
        overlap implementations each fork/join on their own).
        """
        eff = efficiency if efficiency is not None else (
            self.node.boundary_loop_efficiency if boundary else 1.0
        )
        t = task_compute_time(
            self.node, self.threads, points, efficiency=eff, guided=guided
        )
        if pieces > 1:
            from repro.machines.cpu_model import omp_region_overhead

            t += (pieces - 1) * omp_region_overhead(self.node, self.threads)
        return self._charge(phase, t)

    def compute_custom(
        self,
        points: int,
        *,
        flops_per_point: float,
        bytes_per_point: float,
        efficiency: float = 1.0,
        guided: bool = False,
        pieces: int = 1,
        phase: str = "compute",
    ) -> Event:
        """Timed loop with a workload-specific arithmetic intensity.

        The stencil's :meth:`compute` bakes in the advection kernel's
        flop/byte mix; non-stencil workloads (e.g. SpMV, charged per
        stored nonzero) supply their own.
        """
        t = task_compute_time(
            self.node,
            self.threads,
            points,
            bytes_per_point=bytes_per_point,
            flops_per_point=flops_per_point,
            efficiency=efficiency,
            guided=guided,
        )
        if pieces > 1:
            from repro.machines.cpu_model import omp_region_overhead

            t += (pieces - 1) * omp_region_overhead(self.node, self.threads)
        return self._charge(phase, t)

    def compute_seconds(
        self, points: int, *, threads: Optional[int] = None, guided: bool = False,
        efficiency: float = 1.0,
    ) -> float:
        """Sweep duration as a number (for piecewise-rate overlap math)."""
        if points <= 0:
            return 0.0
        return task_compute_time(
            self.node,
            threads if threads is not None else self.threads,
            points,
            efficiency=efficiency,
            guided=guided,
        )

    def copy_state_cost(self, points: int) -> Event:
        """Timed Step-3 state copy."""
        t = task_compute_time(
            self.node,
            self.threads,
            points,
            bytes_per_point=COPY_BYTES_PER_POINT,
            flops_per_point=0.25,
        )
        return self._charge("copy", t)

    def memcpy(
        self,
        nbytes: int,
        stride_penalty: float = 1.0,
        phase: str = "pack",
        threads: Optional[int] = None,
    ) -> Event:
        """Timed on-node copy (halo pack/unpack, buffer staging)."""
        return self._charge(
            phase,
            memcpy_time(
                self.node,
                nbytes,
                threads if threads is not None else self.threads,
                stride_penalty,
            ),
        )

    def host_delay(self, seconds: float, phase: str = "host") -> Event:
        """Arbitrary host-side delay (e.g. kernel-launch overhead)."""
        return self._charge(phase, seconds)

    # -- GPU costs -----------------------------------------------------------------
    def _require_gpu(self) -> Gpu:
        if self.gpu is None:
            raise RuntimeError(f"{self.cfg.implementation}: no GPU in this context")
        return self.gpu

    @property
    def gpudirect(self) -> bool:
        """GPU-aware MPI on this rank: device buffers are sent/received
        directly by the NIC (GPUDirect RDMA), so the GPU+MPI implementations
        skip their host-staging PCIe hops.  Requires both a device in the
        context and an interconnect flagged ``gpudirect``; False on every
        paper-era machine, preserving their §IV-F/G staging bit-for-bit.
        """
        return self.gpu is not None and self.cfg.machine.interconnect.gpudirect

    @property
    def gpu_block(self) -> Tuple[int, int]:
        """The thread block this run uses (config override or device best)."""
        gpu = self._require_gpu()
        if self.cfg.block is not None:
            return self.cfg.block
        from repro.simgpu.blockmodel import best_block

        return best_block(gpu.spec, self.sub.shape)

    def launch_cost(self, n_ops: int = 1) -> Event:
        """Host time to issue ``n_ops`` device operations."""
        gpu = self._require_gpu()
        return self._charge("launch", n_ops * gpu.host_launch_cost_s)

    def stencil_kernel(
        self,
        stream: Stream,
        points: int,
        shape: Optional[Sequence[int]] = None,
        action: Optional[Callable[[], None]] = None,
        name: str = "stencil",
    ) -> Event:
        """Issue the tiled stencil kernel over ``points`` (uniform, fast)."""
        gpu = self._require_gpu()
        t = stencil_kernel_time(
            gpu.spec, points, self.cfg.block, tuple(shape or self.sub.shape)
        )
        return gpu.launch_kernel(stream, t * self.gpu_share, action, name)

    def face_kernel(
        self,
        stream: Stream,
        points: int,
        normal_dim: int,
        action: Optional[Callable[[], None]] = None,
        name: str = "face",
    ) -> Event:
        """Issue a §IV-F/G boundary-face kernel (slow; see multipliers)."""
        gpu = self._require_gpu()
        rate = gpu.spec.face_kernel_gflops * FACE_KERNEL_MULTIPLIER[normal_dim] * 1e9
        t = points * FLOPS_PER_POINT / rate
        return gpu.launch_kernel(stream, t * self.gpu_share, action, name)

    def thin_kernel(
        self,
        stream: Stream,
        points: int,
        action: Optional[Callable[[], None]] = None,
        name: str = "thin",
    ) -> Event:
        """Issue a thin uniform slab kernel (coalesced, limited parallelism)."""
        gpu = self._require_gpu()
        rate = gpu.spec.stencil_gflops_best * gpu.spec.thin_slab_efficiency * 1e9
        t = points * FLOPS_PER_POINT / rate
        return gpu.launch_kernel(stream, t * self.gpu_share, action, name)

    def device_copy_kernel(
        self,
        stream: Stream,
        nbytes: int,
        normal_dim: int,
        action: Optional[Callable[[], None]] = None,
        name: str = "devcopy",
    ) -> Event:
        """Device-side face buffer pack/unpack (strided for x/y normals)."""
        gpu = self._require_gpu()
        if normal_dim == 2:
            rate = gpu.spec.mem_bandwidth_gbs * 1e9 * 0.5
        else:
            rate = gpu.spec.strided_copy_gbs * 1e9
        t = 2 * nbytes / rate  # read + write
        return gpu.launch_kernel(stream, t * self.gpu_share, action, name)

    def h2d(self, stream: Stream, nbytes: int, action=None, name: str = "h2d") -> Event:
        """Async pinned host-to-device copy."""
        gpu = self._require_gpu()
        return gpu.memcpy_h2d(stream, nbytes * self.gpu_share, action, name)

    def d2h(self, stream: Stream, nbytes: int, action=None, name: str = "d2h") -> Event:
        """Async pinned device-to-host copy."""
        gpu = self._require_gpu()
        return gpu.memcpy_d2h(stream, nbytes * self.gpu_share, action, name)

    def pcie_sync(self, nbytes: int, phase: str = "pcie") -> Event:
        """Blocking unpinned copy (the §IV-F path): host stalls for it.

        The driver services synchronous pageable copies one at a time, so
        concurrent tasks sharing the GPU queue on its ``sync_copy_lock``
        (the mirror backend's ``gpu_share`` models the same queueing for
        phantom node peers).
        """
        gpu = self._require_gpu()
        t = gpu.spec.pcie_latency_s + (
            nbytes * self.gpu_share / (gpu.spec.pcie_unpinned_gbs * 1e9)
        )
        if self.perturb is not None and t > 0.0:
            t *= self.perturb.pcie_factor(self.sub.rank)
        self.phases[phase] += t
        env = self.env
        done = env.event()
        lock = gpu.sync_copy_lock.request()
        tracer = self.tracer
        rank = self.sub.rank

        def granted(_ev):
            start = env.now

            def finish(_a):
                gpu.sync_copy_lock.release(lock)
                if tracer is not None:
                    tracer.record(
                        "pcie", phase, start, env.now, group=rank, cat="copy",
                        args={"dev": gpu.name, "nbytes": nbytes},
                    )
                done.succeed()

            env.schedule(t, finish)

        lock.callbacks.append(granted)
        return done

    # -- topology helpers --------------------------------------------------------
    def neighbor(self, dim: int, side: int) -> int:
        """Face-neighbor rank."""
        return self.decomp.neighbor(self.sub.rank, dim, side)

    def face_bytes(self, dim: int) -> int:
        """Bytes of one halo face message in ``dim``."""
        from repro.decomp.halo import face_message_bytes

        return face_message_bytes(self.sub.shape, dim)
