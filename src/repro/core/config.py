"""Run configuration and result records."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, ClassVar, Dict, Optional, Tuple

import numpy as np

from repro.des.trace import Tracer
from repro.machines.spec import MachineSpec
from repro.perturb.spec import NoiseSpec
from repro.stencil.coefficients import FLOPS_PER_POINT

__all__ = ["RunConfig", "RunResult"]


@dataclass(frozen=True)
class RunConfig:
    """One benchmark configuration (a point in the paper's tuning space).

    Parameters
    ----------
    machine:
        Which of the Table II machines to simulate.
    implementation:
        Key from :data:`repro.core.registry.IMPLEMENTATIONS`.
    cores:
        Total CPU cores (the x axis of the scaling figures). Must fill whole
        nodes beyond one node.
    threads_per_task:
        OpenMP threads per MPI task (the paper's primary tuning knob).
    steps:
        Time steps to run between the timing barriers.
    domain:
        Global grid (the paper uses 420^3).
    velocity:
        Constant uniform advection velocity; every component nonzero
        exercises all 27 coefficients.
    nu_fraction:
        nu as a fraction of the maximum stable value (paper runs at 1.0).
    block:
        GPU thread-block (bx, by); ``None`` = best block for the device.
    box_thickness:
        CPU box wall thickness of Fig. 1 (hybrid implementations).
    functional:
        Allocate real fields and compute real numbers (small grids only).
    network:
        ``"mirror"`` (representative rank; fast, any scale) or ``"full"``
        (every rank simulated; required for functional runs).
    trace:
        Record an execution timeline of the representative rank.
    seed:
        Root seed of the perturbation layer (:mod:`repro.perturb`).
        ``None`` (the default) disables every noise/fault model and keeps
        the simulator bit-identical to the noiseless path — including its
        cache keys.
    noise:
        The :class:`~repro.perturb.spec.NoiseSpec` describing how much
        variability to inject; requires ``seed``. ``None`` or a null spec
        means no perturbation.
    disable_stream_overlap / disable_mpi_overlap:
        Ablation switches for the hybrid-overlap implementation, used to
        decompose where its win comes from (see
        ``benchmarks/bench_ablation_overlap.py``).
    """

    machine: MachineSpec
    implementation: str
    cores: int
    threads_per_task: int = 1
    steps: int = 2
    domain: Tuple[int, int, int] = (420, 420, 420)
    velocity: Tuple[float, float, float] = (1.0, 0.9, 0.8)
    nu_fraction: float = 1.0
    sigma: float = 0.08
    block: Optional[Tuple[int, int]] = None
    box_thickness: int = 1
    functional: bool = False
    network: str = "mirror"
    #: record an execution timeline (see repro.des.trace); small overhead.
    trace: bool = False
    #: root seed of the perturbation layer; None = noiseless (bit-identical
    #: to the pre-perturbation simulator, cache keys unchanged).
    seed: Optional[int] = None
    #: noise/fault knobs (repro.perturb.spec.NoiseSpec); requires ``seed``.
    noise: Optional[NoiseSpec] = None
    #: ablation switch: serialize the hybrid-overlap GPU streams against the
    #: host (no kernel/copy hidden behind CPU work).
    disable_stream_overlap: bool = False
    #: ablation switch: complete each MPI dimension before computing the
    #: walls it would have hidden (no MPI hidden behind CPU work).
    disable_mpi_overlap: bool = False
    #: which timed program family to run (repro.workloads registry key);
    #: "advection" is the pre-workload behaviour.
    workload: str = "advection"
    #: workload-specific problem knobs as (name, value) pairs — a
    #: hashable stand-in for a dict on this frozen config (e.g.
    #: (("band", 64), ("rows", 1 << 20)) for spmv). Normalized to sorted
    #: tuple form in __post_init__. Empty for advection.
    workload_params: Tuple[Tuple[str, Any], ...] = ()

    #: Fields left out of the cache key while at these defaults: a config
    #: with the default workload hashes exactly as it did before the
    #: workload layer existed, so every pre-workload cache entry stays
    #: addressable without a model-version bump (the PR 9 spec pattern;
    #: honored both by cache._canonical and by cache.config_key itself).
    _KEY_OMIT_DEFAULTS: ClassVar[Dict[str, Any]] = {
        "workload": "advection",
        "workload_params": (),
    }

    def __post_init__(self):
        node_cores = self.machine.node.cores
        if self.threads_per_task < 1 or self.threads_per_task > node_cores:
            raise ValueError(
                f"{self.threads_per_task} threads/task impossible on "
                f"{node_cores}-core {self.machine.name} nodes"
            )
        if node_cores % self.threads_per_task:
            raise ValueError(
                f"{self.threads_per_task} threads/task does not pack "
                f"{node_cores}-core nodes"
            )
        if self.cores < 1:
            raise ValueError("cores must be >= 1")
        if self.cores > node_cores and self.cores % node_cores:
            raise ValueError(
                f"{self.cores} cores is not a whole number of "
                f"{node_cores}-core nodes"
            )
        if self.cores % self.threads_per_task:
            raise ValueError("cores must be divisible by threads_per_task")
        if self.steps < 1:
            raise ValueError("steps must be >= 1")
        if self.network not in ("mirror", "full"):
            raise ValueError(f"unknown network backend {self.network!r}")
        if self.functional and self.network != "full":
            raise ValueError("functional runs require the full network backend")
        if self.noise is not None and not isinstance(self.noise, NoiseSpec):
            raise ValueError(f"noise must be a NoiseSpec, got {type(self.noise).__name__}")
        if self.noise is not None and not self.noise.is_null and self.seed is None:
            raise ValueError("noise injection requires a seed (set RunConfig.seed)")
        if self.seed is not None and self.seed != int(self.seed):
            raise ValueError(f"seed must be an integer, got {self.seed!r}")
        if not isinstance(self.workload, str) or not self.workload:
            raise ValueError(f"workload must be a non-empty string, got {self.workload!r}")
        # Normalize workload_params to a sorted tuple of (str, scalar)
        # pairs so equal param sets hash to one cache key regardless of
        # the order (or container type) the caller supplied them in.
        try:
            pairs = [(str(k), v) for k, v in self.workload_params]
        except (TypeError, ValueError):
            raise ValueError(
                "workload_params must be (name, value) pairs, got "
                f"{self.workload_params!r}"
            ) from None
        names = [k for k, _ in pairs]
        if len(set(names)) != len(names):
            dupes = sorted({k for k in names if names.count(k) > 1})
            raise ValueError(f"duplicate workload_params: {dupes}")
        for k, v in pairs:
            if not isinstance(v, (int, float, str, bool)):
                raise ValueError(
                    f"workload_params[{k!r}] must be a scalar, got {type(v).__name__}"
                )
        object.__setattr__(self, "workload_params", tuple(sorted(pairs)))

    # -- derived layout -------------------------------------------------------
    @property
    def ntasks(self) -> int:
        """MPI tasks."""
        return self.cores // self.threads_per_task

    @property
    def tasks_per_node(self) -> int:
        """Tasks packed on one node (also tasks sharing one GPU)."""
        return min(self.ntasks, self.machine.node.cores // self.threads_per_task)

    @property
    def nodes(self) -> int:
        """Nodes used."""
        return math.ceil(self.ntasks / self.tasks_per_node)

    @property
    def total_points(self) -> int:
        """Global grid points."""
        nx, ny, nz = self.domain
        return nx * ny * nz

    @property
    def params(self) -> Dict[str, Any]:
        """``workload_params`` as a dict (workload-specific knobs)."""
        return dict(self.workload_params)

    @property
    def nu(self) -> float:
        """The time-step/grid-spacing ratio actually used."""
        from repro.stencil.coefficients import max_stable_nu

        return self.nu_fraction * max_stable_nu(self.velocity)

    def with_(self, **changes) -> "RunConfig":
        """A copy with some fields replaced."""
        from dataclasses import replace

        return replace(self, **changes)


@dataclass
class RunResult:
    """Outcome of one run."""

    config: RunConfig
    elapsed_s: float  # simulated seconds between the timing barriers
    #: per-category simulated-time breakdown of the representative rank
    #: (compute / mpi / pcie / gpu_wait ...), advisory.
    phases: Dict[str, float] = field(default_factory=dict)
    #: assembled global field (functional runs only)
    global_field: Optional[np.ndarray] = None
    #: error norms vs the analytic solution (functional runs only)
    norms: Optional[Dict[str, float]] = None
    #: execution timeline of the run (trace=True runs only)
    tracer: Optional["Tracer"] = None
    #: derived overlap metrics (:class:`repro.obs.metrics.OverlapMetrics`,
    #: trace=True runs only)
    overlap: Optional[object] = None
    #: representative rank's MPI counters (messages/bytes sent/received)
    comm_stats: Dict[str, int] = field(default_factory=dict)
    #: Monte-Carlo replication summary (mean/std/p95/ci95 of elapsed_s over
    #: N seeded replicas; see repro.perturb.stats). Only set by
    #: :func:`repro.core.runner.run_replicated`.
    stats: Optional[Dict[str, float]] = None

    @property
    def seconds_per_step(self) -> float:
        """Simulated seconds per time step."""
        return self.elapsed_s / self.config.steps

    @property
    def gflops(self) -> float:
        """The paper's metric: analytic flops / measured seconds, in GF.

        The advection expression stays inline (the pre-workload fast
        path, bit-identical); other workloads define their own analytic
        flop count via :meth:`repro.workloads.Workload.total_flops`.
        """
        if self.config.workload == "advection":
            work = self.config.total_points * FLOPS_PER_POINT * self.config.steps
        else:
            from repro.workloads import get_workload

            work = get_workload(self.config.workload).total_flops(self.config)
        return work / self.elapsed_s / 1e9

    def summary(self) -> str:
        """One-line human-readable summary."""
        c = self.config
        return (
            f"{c.machine.name:10s} {c.implementation:15s} cores={c.cores:<6d} "
            f"thr={c.threads_per_task:<2d} T={c.box_thickness:<2d} "
            f"-> {self.gflops:8.2f} GF ({self.seconds_per_step * 1e3:.3f} ms/step)"
        )
