"""§IV-C: MPI overlap via nonblocking communication."""

from __future__ import annotations

from repro.core.base import Implementation
from repro.core.context import RankContext
from repro.core.exchange import complete_dim, post_dim

__all__ = ["NonblockingOverlapMPI"]


class NonblockingOverlapMPI(Implementation):
    """Interleave interior computation with the three exchange phases.

    The local interior is split into the points that touch halo (the
    *boundary*, computed last) and the interior core, which is cut into
    thirds along z; the first third executes between nonblocking initiation
    of the x communication and its completion, the second within y, the
    third within z (paper §IV-C).

    The overlap is bought with overhead the paper's results expose: the
    boundary shell is swept by short strided loops (lower efficiency), and
    each step runs four partial sweeps instead of one fused one. As the
    per-task subdomain shrinks with core count, the boundary fraction grows
    and the penalty overtakes the hidden communication — which is exactly
    the crossover of Figs. 3 and 4.
    """

    key = "nonblocking"
    title = "MPI + nonblocking overlap"
    section = "IV-C"
    fortran_loc = 372  # 215 + 73% ("with the nonblocking overlap adding the most")
    uses_mpi = True
    uses_gpu = False

    def step(self, ctx: RankContext, index: int):
        data = ctx.data
        thirds = data.core_thirds()
        for dim in range(3):
            recvs, sends = yield from post_dim(ctx, dim)
            lo, hi = thirds[dim]
            pts = (
                max(0, hi[0] - lo[0]) * max(0, hi[1] - lo[1]) * max(0, hi[2] - lo[2])
            )
            yield ctx.compute(pts)
            data.apply_block(lo, hi)
            yield from complete_dim(ctx, dim, recvs, sends)
        # Boundary points after all communication (strided shell loops).
        yield ctx.compute(data.boundary_points(), boundary=True, pieces=6)
        if data.functional:
            for lo, hi in data.boundary_slabs():
                data.apply_block(lo, hi)
        yield ctx.copy_state_cost(ctx.sub.points)
        data.copy_state()
