"""Two-level ``(workload, implementation)`` registry.

The first level is the workload (:mod:`repro.workloads`; ``advection``
is the default and the pre-workload behaviour), the second level is that
workload's implementation set. This module keeps the historical
module-level names — :data:`IMPLEMENTATIONS` and the key tuples are the
*advection* level, exactly as before the workload layer existed — so
every pre-existing import keeps working unchanged.

Lookup errors name both axes and suggest near-misses: a typo'd key is
checked against the workload's keys under the same normalization as
machine names (case, spaces, hyphen/underscore), and a key that exists
under a *different* workload is pointed there.
"""

from __future__ import annotations

from typing import Dict

from repro.core.base import Implementation, freeze_implementations
from repro.core.bulk_direct import BulkDirectMPI
from repro.core.bulk_mpi import BulkSyncMPI
from repro.core.gpu_bulk_mpi import GpuBulkMPI
from repro.core.gpu_resident import GpuResident
from repro.core.gpu_streams_mpi import GpuStreamsMPI
from repro.core.hybrid_bulk import HybridBulkMPI
from repro.core.hybrid_overlap import HybridOverlapMPI
from repro.core.nonblocking_mpi import NonblockingOverlapMPI
from repro.core.single_task import SingleTask
from repro.core.thread_overlap_mpi import ThreadOverlapMPI

__all__ = [
    "IMPLEMENTATIONS",
    "get_implementation",
    "implementation_keys",
    "CPU_KEYS",
    "GPU_KEYS",
    "PAPER_KEYS",
    "EXTENSION_KEYS",
]

#: key -> frozen singleton: the advection level of the registry — the
#: paper's nine (§IV order), then extensions.
IMPLEMENTATIONS: Dict[str, Implementation] = freeze_implementations(
    SingleTask(),
    BulkSyncMPI(),
    NonblockingOverlapMPI(),
    ThreadOverlapMPI(),
    GpuResident(),
    GpuBulkMPI(),
    GpuStreamsMPI(),
    HybridBulkMPI(),
    HybridOverlapMPI(),
    BulkDirectMPI(),
)

#: The paper's §IV implementations, in order.
PAPER_KEYS = (
    "single", "bulk", "nonblocking", "thread_overlap", "gpu_resident",
    "gpu_bulk", "gpu_streams", "hybrid_bulk", "hybrid_overlap",
)
#: Extensions beyond the paper (DESIGN.md §7).
EXTENSION_KEYS = ("bulk_direct",)
#: CPU-only implementation keys (plotted on all four machines).
CPU_KEYS = ("single", "bulk", "nonblocking", "thread_overlap", "bulk_direct")
#: GPU implementation keys (plotted on Lens and Yona only).
GPU_KEYS = ("gpu_resident", "gpu_bulk", "gpu_streams", "hybrid_bulk", "hybrid_overlap")


def implementation_keys(workload: str = "advection"):
    """Sorted implementation keys of one workload."""
    from repro.workloads import get_workload

    return sorted(get_workload(workload).implementations)


def get_implementation(key: str, workload: str = "advection") -> Implementation:
    """Look up an implementation by ``(workload, key)``.

    Unknown keys raise a :class:`KeyError` that names both axes, suggests
    the normalized near-miss (``"Hybrid-Overlap"`` -> ``hybrid_overlap``)
    and, when the key exists under another workload, says which.
    """
    # Fast path: the default workload resolves without touching the
    # workload registry (the hot lookup of every pre-workload caller).
    if workload == "advection" and key in IMPLEMENTATIONS:
        return IMPLEMENTATIONS[key]

    from repro.workloads import WORKLOADS, get_workload, suggest_key

    wl = get_workload(workload)  # raises the two-axis workload error
    impls = wl.implementations
    if key in impls:
        return impls[key]
    near = suggest_key(key, impls)
    if near is not None:
        hint = f"; did you mean {near!r}?"
    else:
        elsewhere = sorted(
            w for w, other in WORKLOADS.items()
            if w != wl.key and key in other.implementations
        )
        if elsewhere:
            hint = (
                f"; it exists under workload"
                f"{'s' if len(elsewhere) > 1 else ''} "
                + ", ".join(repr(w) for w in elsewhere)
            )
        else:
            hint = ""
    raise KeyError(
        f"unknown implementation {key!r} for workload {wl.key!r}{hint} "
        f"(known {wl.key} implementations: {sorted(impls)})"
    )
