"""Implementation registry."""

from __future__ import annotations

from typing import Dict

from repro.core.base import Implementation
from repro.core.bulk_direct import BulkDirectMPI
from repro.core.bulk_mpi import BulkSyncMPI
from repro.core.gpu_bulk_mpi import GpuBulkMPI
from repro.core.gpu_resident import GpuResident
from repro.core.gpu_streams_mpi import GpuStreamsMPI
from repro.core.hybrid_bulk import HybridBulkMPI
from repro.core.hybrid_overlap import HybridOverlapMPI
from repro.core.nonblocking_mpi import NonblockingOverlapMPI
from repro.core.single_task import SingleTask
from repro.core.thread_overlap_mpi import ThreadOverlapMPI

__all__ = ["IMPLEMENTATIONS", "get_implementation", "CPU_KEYS", "GPU_KEYS", "PAPER_KEYS", "EXTENSION_KEYS"]

#: key -> singleton instance: the paper's nine (§IV order), then extensions.
IMPLEMENTATIONS: Dict[str, Implementation] = {
    impl.key: impl
    for impl in (
        SingleTask(),
        BulkSyncMPI(),
        NonblockingOverlapMPI(),
        ThreadOverlapMPI(),
        GpuResident(),
        GpuBulkMPI(),
        GpuStreamsMPI(),
        HybridBulkMPI(),
        HybridOverlapMPI(),
        BulkDirectMPI(),
    )
}

#: The paper's §IV implementations, in order.
PAPER_KEYS = (
    "single", "bulk", "nonblocking", "thread_overlap", "gpu_resident",
    "gpu_bulk", "gpu_streams", "hybrid_bulk", "hybrid_overlap",
)
#: Extensions beyond the paper (DESIGN.md §7).
EXTENSION_KEYS = ("bulk_direct",)
#: CPU-only implementation keys (plotted on all four machines).
CPU_KEYS = ("single", "bulk", "nonblocking", "thread_overlap", "bulk_direct")
#: GPU implementation keys (plotted on Lens and Yona only).
GPU_KEYS = ("gpu_resident", "gpu_bulk", "gpu_streams", "hybrid_bulk", "hybrid_overlap")


def get_implementation(key: str) -> Implementation:
    """Look up an implementation by registry key."""
    if key not in IMPLEMENTATIONS:
        raise KeyError(f"unknown implementation {key!r}; known: {sorted(IMPLEMENTATIONS)}")
    return IMPLEMENTATIONS[key]
