"""Shared geometry and functional helpers for the GPU implementations.

Device fields mirror the host halo convention (one-point halo, interior at
``[1:-1]``). For the hybrid implementations the device array covers only the
GPU *block* of Fig. 1; :func:`host_to_dev` maps interior coordinates of the
task subdomain onto device-array coordinates.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

import numpy as np

from repro.decomp.boxdecomp import BoxDecomposition

__all__ = [
    "box_points",
    "slab_normal_split",
    "inner_boundary_slabs",
    "inner_halo_slabs",
    "block_shell_slabs",
    "host_to_dev",
    "copy_box_host_to_dev",
    "copy_box_dev_to_host",
]

Box = Tuple[Tuple[int, int, int], Tuple[int, int, int]]


def box_points(box: Box) -> int:
    """Point count of an interior box ``(lo, hi)``."""
    lo, hi = box
    return max(0, hi[0] - lo[0]) * max(0, hi[1] - lo[1]) * max(0, hi[2] - lo[2])


def _shell(lo: Tuple[int, int, int], hi: Tuple[int, int, int]) -> List[Tuple[int, Box]]:
    """Six non-overlapping one-thick slabs covering the shell of [lo, hi).

    Returns ``(normal_dim, box)`` pairs; x slabs span full y/z, y slabs are
    shaved in x, z slabs shaved in x and y (same convention as
    :meth:`repro.core.data.RankData.boundary_slabs`).
    """
    (x0, y0, z0), (x1, y1, z1) = lo, hi
    slabs = [
        (0, ((x0, y0, z0), (x0 + 1, y1, z1))),
        (0, ((x1 - 1, y0, z0), (x1, y1, z1))),
        (1, ((x0 + 1, y0, z0), (x1 - 1, y0 + 1, z1))),
        (1, ((x0 + 1, y1 - 1, z0), (x1 - 1, y1, z1))),
        (2, ((x0 + 1, y0 + 1, z0), (x1 - 1, y1 - 1, z0 + 1))),
        (2, ((x0 + 1, y0 + 1, z1 - 1), (x1 - 1, y1 - 1, z1))),
    ]
    # A one-point extent makes the two slabs of that dimension coincide;
    # keep one so points are neither double-counted nor double-computed.
    out, seen = [], set()
    for dim, box in slabs:
        if box_points(box) == 0 or box in seen:
            continue
        seen.add(box)
        out.append((dim, box))
    return out


def slab_normal_split(slabs: Iterable[Tuple[int, Box]]):
    """Group shell slabs by normal dimension -> total points."""
    totals = {0: 0, 1: 0, 2: 0}
    for dim, box in slabs:
        totals[dim] += box_points(box)
    return totals


def inner_boundary_slabs(box: BoxDecomposition) -> List[Tuple[int, Box]]:
    """The GPU block's outermost layer (D2H'd for the CPU walls)."""
    return _shell(box.block_lo, box.block_hi)


def inner_halo_slabs(box: BoxDecomposition) -> List[Tuple[int, Box]]:
    """The CPU layer just outside the block (H2D'd as the block's halo)."""
    lo = tuple(v - 1 for v in box.block_lo)
    hi = tuple(v + 1 for v in box.block_hi)
    return _shell(lo, hi)


def block_shell_slabs(box: BoxDecomposition) -> List[Tuple[int, Box]]:
    """Alias of :func:`inner_boundary_slabs` (the §IV-I boundary kernels)."""
    return inner_boundary_slabs(box)


def host_to_dev(box: BoxDecomposition):
    """Offset mapping interior coords -> device-array (haloed) coords.

    ``dev_index = interior_coord - (block_lo - 1)`` per dimension, so the
    block's halo layer lands on device indices 0 and -1.
    """
    return tuple(l - 1 for l in box.block_lo)


def copy_box_host_to_dev(
    host: Optional[np.ndarray],
    dev: Optional[np.ndarray],
    box: BoxDecomposition,
    slab: Box,
) -> None:
    """Copy interior box ``slab`` from host field into the device block."""
    if host is None or dev is None:
        return
    off = host_to_dev(box)
    lo, hi = slab
    hsl = tuple(slice(1 + l, 1 + h) for l, h in zip(lo, hi))
    dsl = tuple(slice(l - o, h - o) for l, h, o in zip(lo, hi, off))
    dev[dsl] = host[hsl]


def copy_box_dev_to_host(
    dev: Optional[np.ndarray],
    host: Optional[np.ndarray],
    box: BoxDecomposition,
    slab: Box,
) -> None:
    """Copy interior box ``slab`` from the device block into the host field."""
    if host is None or dev is None:
        return
    off = host_to_dev(box)
    lo, hi = slab
    hsl = tuple(slice(1 + l, 1 + h) for l, h in zip(lo, hi))
    dsl = tuple(slice(l - o, h - o) for l, h, o in zip(lo, hi, off))
    host[hsl] = dev[dsl]
