"""§IV-D: MPI overlap via an asynchronous OpenMP thread."""

from __future__ import annotations

from repro.core.base import Implementation
from repro.core.context import RankContext
from repro.core.exchange import bulk_exchange
from repro.machines.calibration import COMM_THREAD_INTERFERENCE

__all__ = ["ThreadOverlapMPI"]


class ThreadOverlapMPI(Implementation):
    """The master thread communicates while the others compute.

    The interior core runs under ``schedule(guided)`` so the master can join
    once communication finishes; an OpenMP barrier then gates the boundary
    computation (paper §IV-D). The model charges:

    * the full serialized exchange on the master's timeline, with
      single-thread packing (the master is alone in the communication);
    * the interior core at a piecewise rate — ``threads - 1`` workers while
      the master communicates, all ``threads`` afterwards — with the
      schedule(guided) overhead applied throughout;
    * the boundary shell afterwards, on all threads.

    The guided-schedule tax on the bulk of the work is why this
    implementation "consistently lags" in the paper's Figs. 3 and 4.
    """

    key = "thread_overlap"
    title = "MPI + OpenMP-thread overlap"
    section = "IV-D"
    fortran_loc = 344  # 215 + ~60% (within the paper's 57-73% band)
    uses_mpi = True
    uses_gpu = False

    def step(self, ctx: RankContext, index: int):
        data = ctx.data
        core = data.core_points()
        env = ctx.env

        # Master thread performs the whole exchange (single-thread packing).
        t_comm_start = env.now
        yield from bulk_exchange(ctx, threads=1)
        tau = env.now - t_comm_start

        # Interior core at the piecewise rate.
        workers = ctx.threads - 1
        if workers > 0:
            # Workers lose memory bandwidth to the master's MPI-internal
            # copies while communication is in flight.
            t_workers = ctx.compute_seconds(
                core, threads=workers, guided=True,
                efficiency=COMM_THREAD_INTERFERENCE,
            )
            done_fraction = min(1.0, tau / t_workers) if t_workers > 0 else 1.0
        else:
            done_fraction = 0.0  # a single thread cannot overlap anything
        remaining = 1.0 - done_fraction
        if remaining > 0:
            t_all = ctx.compute_seconds(core, guided=True)
            yield ctx.host_delay(remaining * t_all, phase="compute")
        data.apply_block(*data.core_box())

        # OpenMP barrier, then boundary points on all threads.
        yield ctx.compute(data.boundary_points(), boundary=True, pieces=6)
        if data.functional:
            for lo, hi in data.boundary_slabs():
                data.apply_block(lo, hi)
        yield ctx.copy_state_cost(ctx.sub.points)
        data.copy_state()
