"""§IV-B: bulk-synchronous MPI."""

from __future__ import annotations

from repro.core.base import Implementation
from repro.core.context import RankContext
from repro.core.exchange import bulk_exchange

__all__ = ["BulkSyncMPI"]


class BulkSyncMPI(Implementation):
    """Distributed-memory version of the single-task algorithm.

    All of Step 1 (the serialized 6-message halo exchange) completes before
    Steps 2 and 3, which are purely local — no overlap by construction.
    """

    key = "bulk"
    title = "Bulk-synchronous MPI"
    section = "IV-B"
    fortran_loc = 338  # 215 + 57% (paper: "MPI adds 57-73% more lines")
    uses_mpi = True
    uses_gpu = False

    def step(self, ctx: RankContext, index: int):
        yield from bulk_exchange(ctx)
        yield ctx.compute(ctx.sub.points)
        ctx.data.apply_all()
        yield ctx.copy_state_cost(ctx.sub.points)
        ctx.data.copy_state()
