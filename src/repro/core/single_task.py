"""§IV-A: single task with OpenMP threads (the baseline)."""

from __future__ import annotations

from repro.core.base import Implementation
from repro.core.context import FACE_PACK_STRIDE_PENALTY, RankContext

__all__ = ["SingleTask"]


class SingleTask(Implementation):
    """One process, OpenMP-threaded loops, periodic copies in memory.

    Each time step (paper §IV-A):

    1. copy periodic boundaries (doubly nested loops, outer parallelized);
    2. compute the new state via Equation 2 (triply nested, collapse(2));
    3. copy the new state to the current state.
    """

    key = "single"
    title = "Single task"
    section = "IV-A"
    fortran_loc = 215  # stated exactly in the paper
    uses_mpi = False
    uses_gpu = False

    def step(self, ctx: RankContext, index: int):
        data = ctx.data
        # Step 1: periodic halo copies, dimension by dimension so the
        # corner values propagate exactly like the MPI exchange does.
        for dim in range(3):
            yield ctx.memcpy(
                2 * ctx.face_bytes(dim), FACE_PACK_STRIDE_PENALTY[dim], phase="halo"
            )
            data.fill_halo_local([dim])
        # Step 2: Equation 2 over the whole interior.
        yield ctx.compute(ctx.sub.points)
        data.apply_all()
        # Step 3: copy new state over current state.
        yield ctx.copy_state_cost(ctx.sub.points)
        data.copy_state()
