"""§IV-F: GPU with bulk-synchronous MPI."""

from __future__ import annotations

import numpy as np

from repro.core.base import Implementation
from repro.core.context import RankContext
from repro.core.gpu_common import box_points
from repro.decomp.halo import pack_face, unpack_face
from repro.simmpi.api import halo_tag
from repro.stencil.arena import ScratchArena
from repro.stencil.kernels import apply_stencil_block, interior

__all__ = ["GpuBulkMPI"]


class GpuBulkMPI(Implementation):
    """Multi-GPU: CPUs do the MPI, everything serialized.

    Per dimension: a device kernel packs the two face buffers, a blocking
    (pageable) D2H moves them to the host, the CPUs exchange them over MPI,
    a blocking H2D pushes the received halos back, and a device kernel
    unpacks them. Then separate kernels compute each pair of boundary faces
    and the interior (paper §IV-F). Nothing overlaps anything — which,
    combined with the miserable rate of the one-point-thick face kernels,
    is why §V-E measures this at 24 GF where the resident kernel gets 86.
    """

    key = "gpu_bulk"
    title = "GPU + bulk-synchronous MPI"
    section = "IV-F"
    fortran_loc = 610  # "adding MPI ... almost triples" the 215-line baseline
    uses_mpi = True
    uses_gpu = True

    def setup(self, ctx: RankContext):
        gpu = ctx.gpu
        st = ctx.state
        st["stream"] = gpu.stream("main")
        st["arena"] = ScratchArena()  # device-side separable-sweep scratch
        shape = [s + 2 for s in ctx.sub.shape]
        # On GPU-aware interconnects the state arrays are NIC-registered:
        # the packed face buffers live in device memory and are DMA'd by
        # the NIC, so the blocking host-staging copies below disappear.
        st["u"] = gpu.memory.allocate(
            f"u{ctx.sub.rank}", shape, ctx.cfg.functional,
            registered=ctx.gpudirect,
        )
        st["unew"] = gpu.memory.allocate(
            f"unew{ctx.sub.rank}", shape, ctx.cfg.functional,
            registered=ctx.gpudirect,
        )
        st["host_send"] = {}
        st["host_recv"] = {}
        if ctx.cfg.functional:
            interior(st["u"].data)[...] = interior(ctx.data.u)
            yield ctx.h2d(st["stream"], st["u"].nbytes)

    def step(self, ctx: RankContext, index: int):
        st = ctx.state
        stream = st["stream"]
        comm = ctx.comm
        data = ctx.data
        u_dev, unew_dev = st["u"], st["unew"]

        for dim in range(3):
            nbytes = ctx.face_bytes(dim)
            # Receives first, as in the CPU bulk implementation.
            recvs = {}
            for side in (-1, 1):
                recvs[side] = yield from comm.irecv(
                    ctx.neighbor(dim, side), halo_tag(dim, -side), nbytes
                )
            # Device pack kernel -> blocking D2H of both face buffers.
            def pack_action(dim=dim):
                if u_dev.functional:
                    for side in (-1, 1):
                        st["host_send"][(dim, side)] = pack_face(u_dev.data, dim, side)

            yield ctx.launch_cost(1)
            pack_ev = ctx.device_copy_kernel(stream, 2 * nbytes, dim, pack_action)
            yield pack_ev
            if not ctx.gpudirect:
                # Blocking pageable D2H of the packed faces (§IV-F). A
                # GPU-aware interconnect sends the device buffers directly.
                yield ctx.pcie_sync(2 * nbytes)
            # MPI exchange of this dimension.
            sends = []
            for side in (-1, 1):
                payload = st["host_send"].get((dim, side))
                sends.append(
                    (
                        yield from comm.isend(
                            ctx.neighbor(dim, side), halo_tag(dim, side), nbytes, payload
                        )
                    )
                )
            for side in (-1, 1):
                st["host_recv"][(dim, side)] = yield from comm.wait(recvs[side])
            for req in sends:
                yield from comm.wait(req)
            # Blocking H2D of the halo buffers -> device unpack kernel
            # (skipped under GPUDirect: the NIC delivered into device memory).
            if not ctx.gpudirect:
                yield ctx.pcie_sync(2 * nbytes)

            def unpack_action(dim=dim):
                if u_dev.functional:
                    for side in (-1, 1):
                        unpack_face(u_dev.data, dim, side, st["host_recv"][(dim, side)])

            yield ctx.launch_cost(1)
            unpack_ev = ctx.device_copy_kernel(stream, 2 * nbytes, dim, unpack_action)
            yield unpack_ev

        # Face kernels (one per pair of boundary faces per dimension).
        slabs = data.boundary_slabs()
        coeffs = data.coeffs
        arena = st["arena"]
        for dim in range(3):
            pair = slabs[2 * dim : 2 * dim + 2]
            pts = sum(box_points(b) for b in pair)

            def face_action(pair=pair):
                if u_dev.functional:
                    for lo, hi in pair:
                        apply_stencil_block(u_dev.data, coeffs, unew_dev.data,
                                            lo, hi, arena=arena)

            yield ctx.launch_cost(1)
            ctx.face_kernel(stream, pts, dim, face_action)

        # Interior kernel (the simplified resident kernel, §IV-F).
        core_lo, core_hi = data.core_box()

        def interior_action():
            if u_dev.functional:
                apply_stencil_block(u_dev.data, coeffs, unew_dev.data,
                                    core_lo, core_hi, arena=arena)

        yield ctx.launch_cost(1)
        ctx.stencil_kernel(stream, data.core_points(), shape=ctx.sub.shape,
                           action=interior_action)
        yield ctx.gpu.synchronize([stream])
        st["u"], st["unew"] = st["unew"], st["u"]

    def drain(self, ctx: RankContext):
        if ctx.cfg.functional:
            st = ctx.state
            yield ctx.gpu.synchronize()
            yield ctx.d2h(st["stream"], st["u"].nbytes)
            interior(ctx.data.u)[...] = interior(st["u"].data)
