"""§IV-H: CPU and GPU computation with bulk-synchronous MPI."""

from __future__ import annotations

from repro.core.base import Implementation
from repro.core.context import RankContext
from repro.core.exchange import bulk_exchange
from repro.core.gpu_common import (
    box_points,
    copy_box_dev_to_host,
    copy_box_host_to_dev,
    host_to_dev,
    inner_boundary_slabs,
    inner_halo_slabs,
    slab_normal_split,
)
from repro.core.hybrid_common import hybrid_drain, hybrid_setup, hybrid_validate
from repro.decomp.boxdecomp import BoxDecomposition
from repro.machines.calibration import WALL_COMPUTE_EFFICIENCY
from repro.stencil.kernels import apply_stencil_block

__all__ = ["HybridBulkMPI"]


class HybridBulkMPI(Implementation):
    """Fig. 1's decomposition, communication up front, compute overlapped.

    A task starts each step by exchanging inner halo/boundary buffers with
    the GPU and outer halos/boundaries with other tasks through MPI, all
    bulk-synchronous; it then issues the GPU kernel for the block and
    computes the box walls on the CPUs concurrently (paper §IV-H).
    """

    key = "hybrid_bulk"
    title = "CPU+GPU, bulk-synchronous MPI"
    section = "IV-H"
    fortran_loc = 800  # between the GPU+MPI codes and the 860-line §IV-I
    uses_mpi = True
    uses_gpu = True

    def validate(self, cfg):
        hybrid_validate(self, cfg)

    def setup(self, ctx: RankContext):
        yield from hybrid_setup(self, ctx)

    def step(self, ctx: RankContext, index: int):
        st = ctx.state
        box: BoxDecomposition = st["box"]
        data = ctx.data
        s1 = st["s1"]
        u_dev, unew_dev = st["u"], st["unew"]
        coeffs = data.coeffs
        h2d_bytes, d2h_bytes = box.inner_exchange_bytes()

        # 1) Inner exchange with the GPU (bulk: blocking pageable copies).
        #    D2H the block's outer layer for the CPU walls...
        out_slabs = inner_boundary_slabs(box)
        for dim, pts in slab_normal_split(out_slabs).items():
            yield ctx.launch_cost(1)
            ev = ctx.device_copy_kernel(s1, pts * 8, dim)
            yield ev
        yield ctx.pcie_sync(d2h_bytes)
        yield ctx.memcpy(d2h_bytes, 0.7, phase="stage")
        if data.functional:
            for _, slab in out_slabs:
                copy_box_dev_to_host(u_dev.data, data.u, box, slab)
        #    ...and H2D the adjacent CPU layer as the block's halo.
        in_slabs = inner_halo_slabs(box)
        yield ctx.memcpy(h2d_bytes, 0.7, phase="stage")
        yield ctx.pcie_sync(h2d_bytes)
        for dim, pts in slab_normal_split(in_slabs).items():
            yield ctx.launch_cost(1)
            ev = ctx.device_copy_kernel(s1, pts * 8, dim)
            yield ev
        if data.functional:
            for _, slab in in_slabs:
                copy_box_host_to_dev(data.u, u_dev.data, box, slab)

        # 2) Outer exchange with other tasks (bulk-synchronous MPI).
        yield from bulk_exchange(ctx)

        # 3) GPU computes the block while the CPUs compute the walls.
        arena = st["arena"]

        def block_action():
            if u_dev.functional:
                nx, ny, nz = box.block_shape
                apply_stencil_block(u_dev.data, coeffs, unew_dev.data,
                                    (0, 0, 0), (nx, ny, nz), arena=arena)

        yield ctx.launch_cost(1)
        kev = ctx.stencil_kernel(
            s1, box.gpu_points, shape=box.block_shape, action=block_action
        )
        yield ctx.compute(box.cpu_points, efficiency=WALL_COMPUTE_EFFICIENCY)
        if data.functional:
            for wall in box.walls():
                data.apply_block(wall.lo, wall.hi)
        if not kev.processed:
            yield kev

        # 4) New state becomes current: flip on the device, copy the walls.
        st["u"], st["unew"] = st["unew"], st["u"]
        yield ctx.copy_state_cost(box.cpu_points)
        if data.functional:
            for wall in box.walls():
                data.copy_region(wall.lo, wall.hi)

    def drain(self, ctx: RankContext):
        yield from hybrid_drain(self, ctx)
