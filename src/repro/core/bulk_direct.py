"""Extension: bulk-synchronous MPI with a direct 26-neighbor exchange.

Not one of the paper's nine implementations. The paper adopts the
"well-established strategy [that] reduces the number of neighbor exchanges
from 26 to 6" (§IV-B) without measuring the alternative; this
implementation *is* the alternative — every face, edge and corner in its
own message, all posted at once, no dimension serialization — so the
``protocols`` experiment can quantify the trade-off the paper took for
granted: 26 latencies and per-message overheads against three dependent
exchange phases.
"""

from __future__ import annotations

from repro.core.base import Implementation
from repro.core.context import RankContext
from repro.decomp.halo26 import (
    OFFSETS26,
    offset_tag,
    pack_region,
    region_bytes,
    total_exchange_bytes,
    unpack_region,
)

__all__ = ["BulkDirectMPI"]


class BulkDirectMPI(Implementation):
    """Bulk-synchronous advection with 26 direct neighbor messages."""

    key = "bulk_direct"
    title = "Bulk-synchronous MPI, direct 26-neighbor exchange"
    section = "ext"  # extension; no paper section
    fortran_loc = 0  # not measured by the paper
    uses_mpi = True
    uses_gpu = False

    def step(self, ctx: RankContext, index: int):
        comm = ctx.comm
        data = ctx.data
        shape = ctx.sub.shape

        def neighbor_of(d):
            coords = tuple(c + dd for c, dd in zip(ctx.decomp.coords_of(ctx.sub.rank), d))
            return ctx.decomp.rank_of(coords)

        # Post every receive up front: my halo at d arrives from the
        # d-neighbor, which sends toward -d.
        recvs = {}
        for d in OFFSETS26:
            neg = tuple(-x for x in d)
            recvs[d] = yield from comm.irecv(
                neighbor_of(d), offset_tag(neg), region_bytes(shape, d)
            )
        # Pack everything (one threaded pass over ~the same bytes as the
        # serialized protocol, moderately strided), then send all 26.
        yield ctx.memcpy(total_exchange_bytes(shape), 0.7, phase="pack")
        sends = []
        for d in OFFSETS26:
            payload = pack_region(data.u, d) if data.functional else None
            sends.append(
                (
                    yield from comm.isend(
                        neighbor_of(d), offset_tag(d), region_bytes(shape, d), payload
                    )
                )
            )
        # Complete receives, unpack, complete sends.
        payloads = {}
        for d in OFFSETS26:
            payloads[d] = yield from comm.wait(recvs[d])
        yield ctx.memcpy(total_exchange_bytes(shape), 0.7, phase="unpack")
        if data.functional:
            for d in OFFSETS26:
                unpack_region(data.u, d, payloads[d])
        for req in sends:
            yield from comm.wait(req)

        # Local computation is identical to the serialized bulk version.
        yield ctx.compute(ctx.sub.points)
        data.apply_all()
        yield ctx.copy_state_cost(ctx.sub.points)
        data.copy_state()
