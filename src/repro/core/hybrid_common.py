"""Shared setup/teardown of the Fig. 1 hybrid implementations."""

from __future__ import annotations

from repro.core.base import Implementation
from repro.core.config import RunConfig
from repro.core.context import RankContext
from repro.core.gpu_common import copy_box_dev_to_host, copy_box_host_to_dev
from repro.decomp.boxdecomp import BoxDecomposition
from repro.stencil.arena import ScratchArena

__all__ = ["hybrid_validate", "hybrid_setup", "hybrid_drain"]


def hybrid_validate(impl: Implementation, cfg: RunConfig) -> None:
    """Base checks plus eager box-decomposition feasibility.

    The smallest subdomain bounds feasibility (``min(shape) > 2T``), so a
    thickness that would raise inside :func:`hybrid_setup` is rejected
    here — before any simulation — which lets sweep drivers classify
    invalid (threads, thickness) points without running them.
    """
    Implementation.validate(impl, cfg)
    from repro.decomp.partition import Decomposition

    decomp = Decomposition(cfg.ntasks, cfg.domain)
    BoxDecomposition(decomp.min_subdomain_shape(), cfg.box_thickness)


def hybrid_setup(impl: Implementation, ctx: RankContext):
    """Common §IV-H/I setup: box decomposition, device block, buffers."""
    gpu = ctx.gpu
    st = ctx.state
    box = BoxDecomposition(ctx.sub.shape, ctx.cfg.box_thickness)
    st["box"] = box
    st["s1"] = gpu.stream("block")
    st["s2"] = gpu.stream("edges")
    # Device-side scratch arena for the separable sweeps over the GPU block
    # (the CPU walls use the rank's own arena via ctx.data.apply_block).
    st["arena"] = ScratchArena()
    shape = [s + 2 for s in box.block_shape]
    st["u"] = gpu.memory.allocate(f"blk{ctx.sub.rank}", shape, ctx.cfg.functional)
    st["unew"] = gpu.memory.allocate(f"blknew{ctx.sub.rank}", shape, ctx.cfg.functional)
    if ctx.cfg.functional:
        # Initial H2D of the block (outside the measurement).
        copy_box_host_to_dev(
            ctx.data.u, st["u"].data, box, (box.block_lo, box.block_hi)
        )
        yield ctx.h2d(st["s1"], st["u"].nbytes)
    yield ctx.gpu.synchronize()


def hybrid_drain(impl: Implementation, ctx: RankContext):
    """Common drain: pull the final block state back to the host field."""
    if ctx.cfg.functional:
        st = ctx.state
        box = st["box"]
        yield ctx.gpu.synchronize()
        yield ctx.d2h(st["s1"], st["u"].nbytes)
        copy_box_dev_to_host(st["u"].data, ctx.data.u, box, (box.block_lo, box.block_hi))
