"""Command-line interface.

::

    advection-repro list                       # implementations + machines
    advection-repro run --machine yona --impl hybrid_overlap \\
        --cores 12 --threads 6 --thickness 3
    advection-repro experiment fig9            # regenerate one figure/table
    advection-repro experiment fig9 fig10 --jobs 4   # several, in parallel
    advection-repro experiment all --jobs 8    # the full report
    advection-repro experiments                # list experiment ids
    advection-repro sweep --machine yona --impl hybrid_overlap \\
        --cores 12 24 48 --jobs 4              # tuning sweep, parallel
    advection-repro tune --machine yona --impl hybrid_overlap --cores 48
    advection-repro trace --machine yona --impl hybrid_overlap --out t.json
    advection-repro trace --experiments all --fast --check
    advection-repro serve --port 7753 --jobs 4 --journal serve.jsonl
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.config import RunConfig
from repro.core.registry import IMPLEMENTATIONS
from repro.core.runner import run as run_config
from repro.experiments import EXPERIMENTS, run_experiment
from repro.machines import MACHINES, ProgressModel, get_machine

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    p = argparse.ArgumentParser(
        prog="advection-repro",
        description="Reproduction of White & Dongarra (IPPS 2011) on a simulated machine",
    )
    sub = p.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list implementations and machines")
    sub.add_parser("experiments", help="list experiment ids")

    runp = sub.add_parser("run", help="run one configuration")
    runp.add_argument("--machine", required=True, help="jaguarpf|hopper|lens|yona")
    runp.add_argument("--impl", required=True,
                      help="implementation key of the selected workload "
                           "(see 'list'); validated against --workload")
    _add_workload_flags(runp)
    runp.add_argument("--cores", type=int, required=True)
    runp.add_argument("--threads", type=int, default=1)
    runp.add_argument("--thickness", type=int, default=1)
    runp.add_argument("--steps", type=int, default=2)
    runp.add_argument("--domain", type=int, default=420, help="grid points per dimension")
    runp.add_argument("--network", choices=("mirror", "full"), default="mirror")
    runp.add_argument(
        "--functional", action="store_true",
        help="allocate real fields and verify against the analytic solution "
             "(small domains + full network only)",
    )
    runp.add_argument(
        "--trace", action="store_true",
        help="print an execution timeline of the representative rank",
    )
    runp.add_argument(
        "--seed", type=int, default=None, metavar="S",
        help="enable the seeded perturbation layer (OS jitter, network "
             "variance, faults); same seed -> bit-identical results",
    )
    runp.add_argument(
        "--noise", metavar="SPEC", default=None,
        help="noise profile: a preset (off/low/medium/high), 'machine' for "
             "the machine's calibration, 'preset*scale', or knob=value "
             "pairs (see repro.perturb.spec); requires --seed; default "
             "with --seed: 'machine'",
    )
    runp.add_argument(
        "--replicas", type=int, default=1, metavar="N",
        help="Monte-Carlo replication: run N independently seeded replicas "
             "and report mean/std/p95/ci95 (requires --seed)",
    )
    _add_progress_flag(runp)

    expp = sub.add_parser("experiment", help="regenerate tables/figures")
    expp.add_argument("ids", metavar="id", nargs="+",
                      choices=sorted(EXPERIMENTS) + ["all"],
                      help="experiment ids, or 'all' for the full report")
    expp.add_argument("--fast", action="store_true", help="trimmed sweep")
    expp.add_argument("--jobs", type=int, default=1, metavar="N",
                      help="regenerate experiments concurrently: every "
                           "simulated config goes through the shared task "
                           "scheduler with N worker processes (deduplicated "
                           "across figures, bit-identical to --jobs 1)")
    expp.add_argument("--plot", action="store_true",
                      help="also render the series as an ASCII chart")
    expp.add_argument("--json", metavar="PATH", default=None,
                      help="write the full result as JSON (with several ids "
                           "the id is suffixed onto the file name)")
    expp.add_argument("--csv", metavar="PATH", default=None,
                      help="write the series as long-form CSV (suffixed as "
                           "for --json)")
    expp.add_argument("--journal", metavar="PATH", default=None,
                      help="resumable journal for the regeneration (a .jsonl "
                           "path is a single file, anything else a sharded "
                           "journal directory); a killed regeneration "
                           "restarted with the same journal replays its "
                           "finished configs")
    expp.add_argument("--no-cache", action="store_true",
                      help="always re-simulate; do not read or write the "
                           "run-result cache")
    expp.add_argument("--cache-dir", metavar="DIR", default=None,
                      help="run-result cache directory (default: "
                           "$REPRO_CACHE_DIR or .repro-cache); shared "
                           "configs are simulated once per model version "
                           "and replayed bit-identically afterwards")

    sweepp = sub.add_parser(
        "sweep",
        help="sweep the tuning space over core counts through the shared "
             "task scheduler (deduplicated, cached, parallel with --jobs)",
    )
    sweepp.add_argument("--machine", required=True, help="jaguarpf|hopper|lens|yona")
    sweepp.add_argument("--impl", nargs="+", required=True, metavar="IMPL",
                        help="implementation keys of the selected workload, "
                             "or 'all'")
    _add_workload_flags(sweepp)
    sweepp.add_argument("--cores", type=int, nargs="+", required=True,
                        metavar="N", help="total core counts to sweep")
    sweepp.add_argument("--thicknesses", metavar="T1,T2,...", default=None,
                        help="box thicknesses for the hybrid implementations "
                             "(default: the paper's §V-E set)")
    sweepp.add_argument("--steps", type=int, default=2)
    sweepp.add_argument("--network", choices=("mirror", "full"), default="mirror")
    sweepp.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="scheduler worker processes; each distinct "
                             "config is simulated at most once per session "
                             "and results are bit-identical to --jobs 1")
    sweepp.add_argument("--journal", metavar="PATH", default=None,
                        help="resumable journal: an interrupted sweep "
                             "restarts from its completed tasks (a .jsonl "
                             "path is a single file, anything else a "
                             "sharded journal directory)")
    sweepp.add_argument("--no-cache", action="store_true",
                        help="always re-simulate; do not read or write the "
                             "run-result cache")
    sweepp.add_argument("--cache-dir", metavar="DIR", default=None,
                        help="run-result cache directory (default: "
                             "$REPRO_CACHE_DIR or .repro-cache)")
    sweepp.add_argument("--dry-run", action="store_true",
                        help="expand the cross-product and print config/"
                             "dedup counts and the warm/cold split (batched "
                             "cache+journal probes) without running anything")
    sweepp.add_argument("--fabric", metavar="DIR", default=None,
                        help="cooperate with concurrent sweep processes "
                             "through a shared fabric directory (sharded "
                             "journal + shard leases); any number of "
                             "processes may run the same command against "
                             "the same DIR and split the work")
    sweepp.add_argument("--owner", metavar="NAME", default=None,
                        help="lease owner identity in --fabric mode "
                             "(default: host:pid)")
    sweepp.add_argument("--lease-ttl", type=float, default=30.0, metavar="S",
                        help="seconds before a dead scheduler's shard lease "
                             "may be stolen by a peer (--fabric mode)")
    sweepp.add_argument("--shards", type=int, default=16, metavar="N",
                        help="task shards the batch is partitioned into in "
                             "--fabric mode (1-256)")
    _add_progress_flag(sweepp)

    servep = sub.add_parser(
        "serve",
        help="long-running query daemon: NDJSON + HTTP/1.1 on one "
             "listener, warm queries answered from cache without a "
             "worker, identical in-flight queries coalesced",
    )
    servep.add_argument("--host", default="127.0.0.1",
                        help="TCP bind address (default 127.0.0.1)")
    servep.add_argument("--port", type=int, default=0, metavar="P",
                        help="TCP port (0 = ephemeral; printed and "
                             "written to --ready-file)")
    servep.add_argument("--socket", metavar="PATH", default=None,
                        help="also (or instead, with --no-tcp) listen on "
                             "a unix socket")
    servep.add_argument("--no-tcp", action="store_true",
                        help="unix socket only (requires --socket)")
    servep.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="scheduler worker processes for cold queries")
    servep.add_argument("--max-inflight", type=int, default=8, metavar="N",
                        help="admission bound: concurrent cold jobs before "
                             "new cold queries get a structured 'busy' "
                             "error / HTTP 429 (warm queries are never "
                             "rejected)")
    servep.add_argument("--timeout", type=float, default=300.0, metavar="S",
                        help="default per-request timeout in seconds "
                             "(requests may override with 'timeout')")
    servep.add_argument("--journal", metavar="PATH", default=None,
                        help="group-commit journal: simulations survive "
                             "SIGTERM and replay warm on the next start")
    servep.add_argument("--no-cache", action="store_true",
                        help="serve without the on-disk run cache")
    servep.add_argument("--cache-dir", metavar="DIR", default=None,
                        help="run-result cache directory (default: "
                             "$REPRO_CACHE_DIR or .repro-cache)")
    servep.add_argument("--ready-file", metavar="PATH", default=None,
                        help="write {host, port, socket, pid} as JSON once "
                             "listening (test/CI discovery of ephemeral "
                             "ports)")
    servep.add_argument("--drain-grace", type=float, default=30.0,
                        metavar="S",
                        help="seconds SIGTERM waits for in-flight jobs "
                             "before closing anyway")

    valp = sub.add_parser("validate", help="run every correctness oracle")
    valp.add_argument("--impl", default="all",
                      choices=["all"] + sorted(IMPLEMENTATIONS))

    tunep = sub.add_parser("tune", help="auto-tune one implementation")
    tunep.add_argument("--machine", required=True)
    tunep.add_argument("--impl", required=True, choices=sorted(IMPLEMENTATIONS))
    tunep.add_argument("--cores", type=int, required=True)
    tunep.add_argument("--strategy", choices=("greedy", "exhaustive"), default="greedy")
    _add_progress_flag(tunep)

    tracep = sub.add_parser(
        "trace",
        help="trace one run (Chrome-trace/Perfetto export, overlap metrics, "
             "invariant checker) or check every run of whole experiments",
    )
    tracep.add_argument("--impl",
                        help="implementation to trace (single-run mode)")
    _add_workload_flags(tracep)
    tracep.add_argument("--machine", help="jaguarpf|hopper|lens|yona")
    tracep.add_argument("--cores", type=int, default=None,
                        help="total cores (default: one full node)")
    tracep.add_argument("--threads", type=int, default=1)
    tracep.add_argument("--thickness", type=int, default=1)
    tracep.add_argument("--steps", type=int, default=2)
    tracep.add_argument("--domain", type=int, default=420,
                        help="grid points per dimension")
    tracep.add_argument("--network", choices=("mirror", "full"), default="mirror")
    tracep.add_argument("--out", metavar="PATH", default=None,
                        help="write Chrome-trace JSON (open at "
                             "https://ui.perfetto.dev)")
    tracep.add_argument("--ascii", action="store_true",
                        help="print the ASCII timeline")
    tracep.add_argument("--check", action="store_true",
                        help="run the trace-invariant checker and fail on "
                             "violations")
    tracep.add_argument("--experiments", nargs="+", metavar="ID", default=None,
                        help="instead of a single run, trace and check every "
                             "run these experiments perform ('all' = full "
                             "report); implies --check")
    tracep.add_argument("--fast", action="store_true",
                        help="trimmed sweeps in --experiments mode")
    tracep.add_argument("--seed", type=int, default=None, metavar="S",
                        help="trace under the seeded perturbation layer; in "
                             "--experiments mode every run is swept under "
                             "(seed, --noise)")
    tracep.add_argument("--noise", metavar="SPEC", default=None,
                        help="noise profile (see 'run --noise'); requires "
                             "--seed; default with --seed: 'machine' for a "
                             "single run, 'medium' in --experiments mode")
    _add_progress_flag(tracep)
    return p


def _add_workload_flags(parser) -> None:
    parser.add_argument(
        "--workload", metavar="KEY", default="advection",
        help="timed program family (see 'list'; default: advection, the "
             "paper's stencil)",
    )
    parser.add_argument(
        "--param", metavar="NAME=VALUE", action="append", default=[],
        dest="params",
        help="workload-specific problem knob (repeatable), e.g. "
             "--workload spmv --param rows=65536 --param band=16",
    )


def _parse_workload_params(pairs: List[str]):
    """``--param NAME=VALUE`` flags as ``workload_params`` tuples."""
    out = []
    for text in pairs:
        name, sep, raw = text.partition("=")
        if not sep or not name:
            raise ValueError(f"--param expects NAME=VALUE, got {text!r}")
        value: object
        try:
            value = int(raw)
        except ValueError:
            try:
                value = float(raw)
            except ValueError:
                value = raw
        out.append((name, value))
    return tuple(out)


def _add_progress_flag(parser) -> None:
    parser.add_argument(
        "--progress", metavar="MODEL", default=None,
        choices=[m.value for m in ProgressModel],
        help="override the machine's MPI progress model "
             "(manual-poll | progress-thread | hardware-offload)",
    )


def _apply_progress(machine, progress: Optional[str]):
    """The machine with its interconnect's progress model overridden."""
    if not progress:
        return machine
    from dataclasses import replace

    return replace(
        machine,
        interconnect=replace(machine.interconnect, progress=ProgressModel(progress)),
    )


def _cmd_list() -> int:
    from repro.workloads import WORKLOADS, workload_keys

    print("implementations:")
    for key, impl in IMPLEMENTATIONS.items():
        print(f"  {key:16s} {impl.section:6s} {impl.title}")
    print("workloads (--workload KEY; implementations per workload):")
    for wkey in workload_keys():
        wl = WORKLOADS[wkey]
        impls = ", ".join(sorted(wl.implementations))
        print(f"  {wkey:16s} {wl.title}")
        print(f"  {'':16s}   impls: {impls}")
    print("machines:")
    seen = set()
    for m in MACHINES.values():
        if m.name in seen:
            continue
        seen.add(m.name)
        gpu = m.gpu.name if m.gpu else "-"
        print(f"  {m.name:10s} nodes={m.compute_nodes:<6d} cores/node={m.node.cores:<3d} gpu={gpu}")
    return 0


def _resolve_noise(args, machine, default: str):
    """``(seed, NoiseSpec|None)`` from ``--seed``/``--noise``.

    Raises ``SystemExit``-friendly ``ValueError`` on misuse (``--noise``
    or ``--replicas`` without ``--seed``, unknown spec).
    """
    from repro.perturb import NoiseSpec

    seed = getattr(args, "seed", None)
    text = getattr(args, "noise", None)
    if text is not None and seed is None:
        raise ValueError("--noise requires --seed")
    if getattr(args, "replicas", 1) > 1 and seed is None:
        raise ValueError("--replicas requires --seed")
    if seed is None:
        return None, None
    if text is None:
        text = default
    if text == "machine":
        if machine is None:
            raise ValueError("--noise machine needs a single --machine")
        return seed, NoiseSpec.for_machine(machine.name)
    return seed, NoiseSpec.parse(text)


def _cmd_run(args) -> int:
    machine = _apply_progress(get_machine(args.machine), args.progress)
    try:
        seed, noise = _resolve_noise(args, machine, default="machine")
        params = _parse_workload_params(args.params)
    except ValueError as exc:
        print(f"run: {exc}", file=sys.stderr)
        return 2
    cfg = RunConfig(
        machine=machine,
        implementation=args.impl,
        cores=args.cores,
        threads_per_task=args.threads,
        box_thickness=args.thickness,
        steps=args.steps,
        domain=(args.domain,) * 3,
        network="full" if args.functional else args.network,
        functional=args.functional,
        trace=args.trace,
        seed=seed,
        noise=noise,
        workload=args.workload,
        workload_params=params,
    )
    try:
        if args.replicas > 1:
            from repro.core.runner import run_replicated

            result = run_replicated(cfg, args.replicas)
        else:
            result = run_config(cfg)
    except KeyError as exc:
        # Unknown workload/implementation: the two-axis registry error.
        print(f"run: {exc.args[0]}", file=sys.stderr)
        return 2
    print(result.summary())
    if result.stats is not None:
        s = result.stats
        print(
            f"  {int(s['n'])} replicas: mean={s['mean'] * 1e3:.3f} ms  "
            f"std={s['std'] * 1e3:.3f} ms  p95={s['p95'] * 1e3:.3f} ms  "
            f"ci95=±{s['ci95'] * 1e3:.3f} ms"
        )
    if result.tracer is not None:
        t0, t1 = result.tracer.span()
        window_end = min(t1, t0 + result.seconds_per_step)
        print(result.tracer.timeline_text(width=100, window=(t0, window_end)))
        busy_k = result.tracer.busy_time("gpu-kernel")
        busy_h = result.tracer.busy_time("host")
        if busy_k:
            hidden = result.tracer.overlap_time("host", "gpu-kernel")
            print(
                f"  gpu-kernel busy {busy_k * 1e3:.2f} ms, host busy "
                f"{busy_h * 1e3:.2f} ms, overlapped {hidden * 1e3:.2f} ms"
            )
    if result.overlap is not None:
        print("  " + result.overlap.summary())
    if result.norms is not None:
        print("  norms vs analytic: " + "  ".join(f"{k}={v:.3e}" for k, v in result.norms.items()))
    if result.phases:
        total = sum(result.phases.values())
        breakdown = "  ".join(f"{k}={v * 1e3:.2f}ms" for k, v in sorted(result.phases.items()))
        print(f"  host-side phase breakdown ({total * 1e3:.2f} ms total): {breakdown}")
    return 0


def _suffixed(path: str, exp_id: str, multiple: bool) -> str:
    """Insert ``-{exp_id}`` before the extension when exporting several ids."""
    if not multiple:
        return path
    import os.path

    root, ext = os.path.splitext(path)
    return f"{root}-{exp_id}{ext}"


def _resolve_cache_dir(args) -> Optional[str]:
    """Cache directory for an ``experiment`` invocation (None = disabled)."""
    import os

    from repro.cache import DEFAULT_CACHE_DIR

    if getattr(args, "no_cache", False):
        return None
    explicit = getattr(args, "cache_dir", None)
    return explicit or os.environ.get("REPRO_CACHE_DIR") or DEFAULT_CACHE_DIR


def _cmd_experiment(args) -> int:
    from repro.experiments import run_experiments

    ids = list(dict.fromkeys(  # dedupe, keep order
        sorted(EXPERIMENTS) if "all" in args.ids else args.ids
    ))
    cache_dir = _resolve_cache_dir(args)
    results = run_experiments(ids, fast=args.fast, jobs=getattr(args, "jobs", 1),
                              cache_dir=cache_dir,
                              journal=getattr(args, "journal", None))
    multiple = len(results) > 1
    for result in results:
        print(result.to_text())
        if getattr(args, "plot", False) and result.series:
            from repro.report import ascii_plot

            print()
            print(ascii_plot(result.series, title=result.title))
        if getattr(args, "json", None):
            from repro.export import write_json

            path = _suffixed(args.json, result.exp_id, multiple)
            write_json(result, path)
            print(f"wrote {path}")
        if getattr(args, "csv", None):
            from repro.export import write_csv

            path = _suffixed(args.csv, result.exp_id, multiple)
            write_csv(result, path)
            print(f"wrote {path}")
    if cache_dir is not None:
        from repro.cache import stats

        s = stats()
        looked_up = s["hits"] + s["misses"]
        rate = 100.0 * s["hits"] / looked_up if looked_up else 0.0
        print(
            f"run cache: {s['hits']} hits / {s['misses']} misses "
            f"({rate:.0f}% hit rate), {s['stores']} stored -> {cache_dir}"
        )
    return 0


def _sweep_groups(args, machine, thicknesses):
    """Expand the sweep cross-product: one feasible-config group per
    (impl, cores) point, plus total/infeasible counts.

    Every sweep mode (run, ``--dry-run``, ``--fabric``) shares this
    expansion, so the printed tables stay byte-identical across modes.
    """
    from repro.perf.sweep import tuning_configs
    from repro.sched import validate_config
    from repro.workloads import get_workload

    workload = getattr(args, "workload", "advection")
    params = _parse_workload_params(getattr(args, "params", []))
    impls = (
        sorted(get_workload(workload).implementations) if "all" in args.impl
        else list(dict.fromkeys(args.impl))
    )
    groups = []
    total = skipped = 0
    for impl in impls:
        for cores in args.cores:
            cfgs = tuning_configs(
                machine, impl, cores,
                thicknesses=thicknesses, steps=args.steps,
                network=args.network,
                workload=workload, workload_params=params,
            )
            feasible = []
            for cfg in cfgs:
                total += 1
                try:
                    validate_config(cfg)
                except ValueError:
                    skipped += 1
                    continue
                feasible.append(cfg)
            groups.append((impl, cores, feasible))
    return groups, total, skipped


def _print_sweep_table(rows) -> None:
    print(f"{'impl':16s} {'cores':>6s} {'threads':>7s} {'T':>3s} "
          f"{'GF':>8s} {'ms/step':>8s}")
    for impl, cores, best in rows:
        if best is None:
            print(f"{impl:16s} {cores:6d} {'-':>7s} {'-':>3s} {'-':>8s} {'-':>8s}")
            continue
        print(
            f"{impl:16s} {cores:6d} {best.config.threads_per_task:7d} "
            f"{best.config.box_thickness:3d} {best.gflops:8.2f} "
            f"{best.seconds_per_step * 1e3:8.3f}"
        )


def _sweep_dry_run(args, groups, total, skipped, cache_dir) -> int:
    """Expand, dedup and probe the sweep — run nothing.

    The warm/cold split comes from *batched existence probes* of the
    memoized cache keys against the run cache and (when given) the
    journal: no payloads are read, no counters move, nothing simulates.
    """
    import os

    from repro.cache import RunCache, config_key
    from repro.sched import open_journal

    distinct = {}
    for _impl, _cores, feasible in groups:
        for cfg in feasible:
            distinct.setdefault(config_key(cfg), cfg)
    warm_keys = set()
    if cache_dir is not None and os.path.isdir(cache_dir):
        cache = RunCache(cache_dir)
        warm_keys.update(k for k in distinct if cache.has_key(k))
    if args.journal and os.path.exists(args.journal):
        journal = open_journal(args.journal)
        try:
            warm_keys.update(k for k in distinct if k in journal)
        finally:
            journal.close()
    warm = len(warm_keys)
    print(
        f"dry-run: configs={total} infeasible={skipped} "
        f"feasible={total - skipped} distinct={len(distinct)} "
        f"warm={warm} cold={len(distinct) - warm}"
    )
    for impl, cores, feasible in groups:
        print(f"  {impl:16s} {cores:6d} configs={len(feasible)}")
    return 0


def _sweep_fabric(args, groups, cache_dir) -> int:
    """Run the sweep cooperatively with concurrent peer processes."""
    from repro.sched import run_fabric

    if not 1 <= args.shards <= 256:
        print(f"sweep: --shards must be in [1, 256], got {args.shards}",
              file=sys.stderr)
        return 2
    flat = [cfg for _impl, _cores, feasible in groups for cfg in feasible]
    fr = run_fabric(
        flat, args.fabric,
        owner=args.owner, jobs=args.jobs, nshards=args.shards,
        ttl=args.lease_ttl, cache_dir=cache_dir,
    )
    rows = []
    it = iter(fr.results)
    for impl, cores, feasible in groups:
        results = [next(it) for _ in feasible]
        best = max(results, key=lambda r: r.gflops) if results else None
        rows.append((impl, cores, best))
    _print_sweep_table(rows)
    print(fr.summary())
    return 0


def _cmd_sweep(args) -> int:
    """Tuning sweep over (impl, cores) points through the scheduler."""
    from repro import cache as run_cache
    from repro.perf.sweep import sweep_configs
    from repro.sched import scheduled

    machine = _apply_progress(get_machine(args.machine), args.progress)
    if args.jobs < 1:
        print(f"sweep: --jobs must be >= 1, got {args.jobs}", file=sys.stderr)
        return 2
    thicknesses = None
    if args.thicknesses:
        try:
            thicknesses = tuple(int(t) for t in args.thicknesses.split(","))
        except ValueError:
            print(f"sweep: bad --thicknesses {args.thicknesses!r}", file=sys.stderr)
            return 2
    cache_dir = _resolve_cache_dir(args)
    try:
        groups, total, skipped = _sweep_groups(args, machine, thicknesses)
    except KeyError as exc:
        print(f"sweep: {exc.args[0]}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"sweep: {exc}", file=sys.stderr)
        return 2
    if args.dry_run:
        return _sweep_dry_run(args, groups, total, skipped, cache_dir)
    if args.fabric:
        return _sweep_fabric(args, groups, cache_dir)
    if cache_dir is not None:
        run_cache.configure(cache_dir)

    rows = []
    with scheduled(args.jobs, cache_dir=cache_dir, journal=args.journal) as sched:
        for impl, cores, feasible in groups:
            results = sweep_configs(feasible)
            best = max(results, key=lambda r: r.gflops) if results else None
            rows.append((impl, cores, best))
        summary = sched.summary()

    _print_sweep_table(rows)
    print(summary)
    if cache_dir is not None:
        s = run_cache.stats()
        looked_up = s["hits"] + s["misses"]
        rate = 100.0 * s["hits"] / looked_up if looked_up else 0.0
        print(
            f"run cache: {s['hits']} hits / {s['misses']} misses "
            f"({rate:.0f}% hit rate), {s['stores']} stored -> {cache_dir}"
        )
    return 0


def _cmd_serve(args) -> int:
    from repro.serve.server import serve

    if args.no_tcp and not args.socket:
        print("serve: --no-tcp requires --socket", file=sys.stderr)
        return 2
    if args.jobs < 1:
        print(f"serve: --jobs must be >= 1, got {args.jobs}", file=sys.stderr)
        return 2
    if args.max_inflight < 1:
        print(f"serve: --max-inflight must be >= 1, got {args.max_inflight}",
              file=sys.stderr)
        return 2
    return serve(
        host=args.host,
        port=None if args.no_tcp else args.port,
        socket_path=args.socket,
        jobs=args.jobs,
        cache_dir=_resolve_cache_dir(args),
        journal=args.journal,
        max_inflight=args.max_inflight,
        timeout_s=args.timeout,
        ready_file=args.ready_file,
        drain_grace_s=args.drain_grace,
    )


def _cmd_validate(args) -> int:
    from repro.validation import validate_implementation

    keys = sorted(IMPLEMENTATIONS) if args.impl == "all" else [args.impl]
    failed = 0
    for key in keys:
        report = validate_implementation(key)
        print(report.to_text())
        failed += 0 if report.passed else 1
    return 1 if failed else 0


def _cmd_tune(args) -> int:
    from repro.autotune import exhaustive_search, greedy_search

    search = greedy_search if args.strategy == "greedy" else exhaustive_search
    res = search(
        _apply_progress(get_machine(args.machine), args.progress),
        args.impl, args.cores,
    )
    print(
        f"best: threads={res.best_point.threads_per_task} "
        f"thickness={res.best_point.box_thickness} block={res.best_point.block} "
        f"-> {res.best_gflops:.2f} GF ({res.evaluations} evaluations)"
    )
    return 0


def _cmd_trace(args) -> int:
    from repro.obs import check_trace, write_chrome_trace

    if args.experiments:
        return _cmd_trace_experiments(args)
    if not args.impl or not args.machine:
        print("trace: --impl and --machine are required (or use --experiments)",
              file=sys.stderr)
        return 2
    machine = _apply_progress(get_machine(args.machine), args.progress)
    cores = args.cores if args.cores is not None else machine.node.cores
    try:
        seed, noise = _resolve_noise(args, machine, default="machine")
        params = _parse_workload_params(args.params)
    except ValueError as exc:
        print(f"trace: {exc}", file=sys.stderr)
        return 2
    cfg = RunConfig(
        machine=machine,
        implementation=args.impl,
        cores=cores,
        threads_per_task=args.threads,
        box_thickness=args.thickness,
        steps=args.steps,
        domain=(args.domain,) * 3,
        network=args.network,
        trace=True,
        seed=seed,
        noise=noise,
        workload=args.workload,
        workload_params=params,
    )
    try:
        result = run_config(cfg)
    except KeyError as exc:
        print(f"trace: {exc.args[0]}", file=sys.stderr)
        return 2
    print(result.summary())
    if result.overlap is not None:
        print("  " + result.overlap.summary())
    if args.ascii and result.tracer is not None:
        t0, t1 = result.tracer.span()
        window_end = min(t1, t0 + result.seconds_per_step)
        print(result.tracer.timeline_text(width=100, window=(t0, window_end)))
    if args.out and result.tracer is not None:
        write_chrome_trace(
            result.tracer, args.out,
            metadata={"overlap": result.overlap.to_dict() if result.overlap else None},
        )
        print(f"wrote {args.out} (open at https://ui.perfetto.dev)")
    if args.check and result.tracer is not None:
        violations = check_trace(result.tracer)
        if violations:
            for v in violations:
                print(f"INVARIANT VIOLATION: {v}", file=sys.stderr)
            return 1
        print("trace invariants: OK")
    return 0


def _cmd_trace_experiments(args) -> int:
    """Trace-and-check every run the named experiments perform."""
    from repro.experiments import run_experiments
    from repro.obs import check_trace, write_chrome_trace
    from repro.obs.capture import capture_traces

    ids = list(dict.fromkeys(
        sorted(EXPERIMENTS) if "all" in args.experiments else args.experiments
    ))
    unknown = [i for i in ids if i not in EXPERIMENTS]
    if unknown:
        print(f"trace: unknown experiment id(s): {unknown}", file=sys.stderr)
        return 2
    try:
        # Experiments span machines, so 'machine' is not resolvable here;
        # the perturbed sweep defaults to the "medium" profile.
        seed, noise = _resolve_noise(args, None, default="medium")
    except ValueError as exc:
        print(f"trace: {exc}", file=sys.stderr)
        return 2
    state = {"runs": 0, "violations": [], "first_written": False}

    def observe(result):
        state["runs"] += 1
        for v in check_trace(result.tracer):
            state["violations"].append(
                f"{result.config.implementation}"
                f"@{result.config.machine.name}: {v}"
            )
        if args.out and not state["first_written"]:
            state["first_written"] = True
            write_chrome_trace(result.tracer, args.out)

    from contextlib import nullcontext

    if seed is not None:
        from repro.perturb import forced_noise

        noise_ctx = forced_noise(seed, noise)
    else:
        noise_ctx = nullcontext()
    with noise_ctx, capture_traces(observe):
        # jobs=1: the capture hook is process-global and must see every run.
        run_experiments(ids, fast=args.fast, jobs=1, cache_dir=None)
    perturbed = f" under seed={seed} noise" if seed is not None else ""
    print(
        f"checked {state['runs']} traced run(s) across {len(ids)} "
        f"experiment(s){perturbed}"
    )
    if args.out and state["first_written"]:
        print(f"wrote {args.out} (open at https://ui.perfetto.dev)")
    if state["violations"]:
        for v in state["violations"]:
            print(f"INVARIANT VIOLATION: {v}", file=sys.stderr)
        return 1
    print("trace invariants: OK")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "experiments":
        for eid, mod in EXPERIMENTS.items():
            print(f"  {eid:8s} {mod}")
        return 0
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "experiment":
        return _cmd_experiment(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "validate":
        return _cmd_validate(args)
    if args.command == "tune":
        return _cmd_tune(args)
    if args.command == "trace":
        return _cmd_trace(args)
    raise AssertionError("unreachable")


if __name__ == "__main__":
    sys.exit(main())
